"""Shared marking-dependent rate functions of the Figure 1 SPN.

One :class:`GCSRates` instance bundles the attacker function, detection
function, voting error model and rekey timing for a scenario, and
exposes the five transition rates:

====== ============================  =========================================
trans  paper rate                    method
====== ============================  =========================================
T_CP   ``A(mc)``                     :meth:`GCSRates.rate_compromise`
T_DRQ  ``p1·λq·#UCm``                :meth:`GCSRates.rate_data_leak`
T_IDS  ``#UCm·D(md)·(1-Pfn)``        :meth:`GCSRates.rate_detection`
T_FA   ``#Tm·D(md)·Pfp``             :meth:`GCSRates.rate_false_accusation`
T_RK   ``1/Tcm``                     :meth:`GCSRates.rate_rekey`
====== ============================  =========================================

Group-count treatment: ``mc`` and ``md`` are ratios and therefore
invariant under dividing all counts by the number of groups; the voting
probabilities and the rekey time are *not*, so they are evaluated at
per-group counts obtained with ``group_scale = 1/E[NG]`` (exactly 1 when
group dynamics are disabled; the coupled model passes the live ``ng``
instead — see :func:`repro.core.model.build_gcs_spn`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..attackers.functions import AttackerFunction
from ..detection.functions import DetectionFunction
from ..errors import ParameterError
from ..groupkey.rekey import RekeyCostModel
from ..manet.network import NetworkModel
from ..params import GCSParameters
from ..voting.majority import VotingErrorModel

__all__ = ["GCSRates"]


@dataclass(frozen=True)
class GCSRates:
    """Transition-rate bundle for one scenario."""

    params: GCSParameters
    attacker: AttackerFunction
    detection: DetectionFunction
    voting: VotingErrorModel
    rekey: RekeyCostModel
    group_scale: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.group_scale <= 1.0:
            raise ParameterError(
                f"group_scale must be in (0, 1], got {self.group_scale}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_scenario(
        cls,
        params: GCSParameters,
        network: NetworkModel,
        *,
        expected_groups: float = 1.0,
        element_bits: Optional[int] = None,
    ) -> "GCSRates":
        """Assemble the rate bundle from parameter objects."""
        if expected_groups < 1.0:
            raise ParameterError(
                f"expected_groups must be >= 1, got {expected_groups}"
            )
        return cls(
            params=params,
            attacker=AttackerFunction.from_params(params.attack),
            detection=DetectionFunction.from_params(params.detection),
            voting=VotingErrorModel(
                num_voters=params.detection.num_voters,
                host_false_negative=params.detection.host_false_negative,
                host_false_positive=params.detection.host_false_positive,
            ),
            rekey=RekeyCostModel(network, element_bits or 1024),
            group_scale=1.0 / expected_groups,
        )

    # ------------------------------------------------------------------
    def _per_group(self, count: int, scale: Optional[float]) -> int:
        s = self.group_scale if scale is None else scale
        return max(int(round(count * s)), 0)

    # ------------------------------------------------------------------
    def rate_compromise(self, t: int, u: int) -> float:
        """T_CP: ``A(mc)`` (0 when no trusted member remains)."""
        if t <= 0:
            return 0.0
        return self.attacker.rate(t, u)

    def rate_data_leak(self, u: int) -> float:
        """T_DRQ: ``p1 · λq · #UCm``."""
        if u <= 0:
            return 0.0
        return (
            self.params.detection.host_false_negative
            * self.params.workload.data_rate_hz
            * u
        )

    def rate_detection(
        self, t: int, u: int, *, group_scale: Optional[float] = None
    ) -> float:
        """T_IDS: ``#UCm · D(md) · (1 - Pfn)``."""
        if u <= 0 or t + u <= 0:
            return 0.0
        d_rate = self.detection.rate(self.params.num_nodes, t + u)
        tg, ug = self._per_group(t, group_scale), max(
            self._per_group(u, group_scale), 1
        )
        pfn = self.voting.false_negative_probability(tg, ug)
        return u * d_rate * (1.0 - pfn)

    def rate_false_accusation(
        self, t: int, u: int, *, group_scale: Optional[float] = None
    ) -> float:
        """T_FA: ``#Tm · D(md) · Pfp``."""
        if t <= 0:
            return 0.0
        d_rate = self.detection.rate(self.params.num_nodes, t + u)
        tg, ug = max(self._per_group(t, group_scale), 1), self._per_group(
            u, group_scale
        )
        pfp = self.voting.false_positive_probability(tg, ug)
        return t * d_rate * pfp

    def rate_rekey(
        self, t: int, u: int, d: int, *, group_scale: Optional[float] = None
    ) -> float:
        """T_RK: ``1 / Tcm`` for the current per-group member count.

        Rekeys serialise on the shared channel, so the rate does not
        scale with the backlog ``#DCm`` (single-server semantics).
        """
        if d <= 0:
            return 0.0
        members = self._per_group(t + u + d, group_scale)
        return 1.0 / self.rekey.tcm_s(max(members, 2))

    # ------------------------------------------------------------------
    def describe(self) -> str:
        return (
            f"GCSRates({self.attacker.describe()}; {self.detection.describe()}; "
            f"m={self.voting.num_voters}; scale={self.group_scale:g})"
        )
