"""The ``evaluate()`` pipeline: parameters → MTTSF + Ĉtotal.

This is the reproduction's main entry point. It assembles the scenario
(network model, ``NG`` birth–death distribution, rate bundle, cost
model), builds the security chain (vectorised lattice by default, the
literal Figure 1 SPN on request), and runs the absorbing analysis:

* **MTTSF** = mean time to absorption from the all-trusted marking;
* **Ĉtotal** = expected accumulated communication cost ÷ MTTSF;
* failure-mode split across C1 / C2 / depletion.

:func:`evaluate` solves one scenario; :func:`evaluate_batch` solves a
whole *sweep* at once. The paper's artifacts are sweeps whose grid
points share the lattice topology and differ only in rates, so the
batch path reuses one cached :class:`~repro.core.fastpath.LatticeStructure`
per group size and runs a single multi-point level-scheduled backward
sweep (:func:`repro.ctmc.acyclic.solve_dag_batch`) over stacked
``(P, nnz)`` rate arrays — bit-identical per-point results, one shared
pass instead of ``P`` rebuilds.

:func:`evaluate_survivability` / :func:`evaluate_survivability_batch`
are the *transient* counterparts: instead of steady-state absorption
quantities they compute the time-bounded survivability curve
``S(t) = P(no security failure by t)`` over a mission-time grid, per
failure class, with expected cost rates and trapezoidal time-bounded
costs — batched by the same structure-sharing recipe
(:func:`repro.ctmc.transient.transient_distribution_batch`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from ..costs.aggregate import GCSCostModel
from ..costs.components import COMPONENT_NAMES
from ..costs.sizes import MessageSizes
from ..ctmc.absorbing import analyze_absorbing
from ..ctmc.acyclic import solve_dag_batch
from ..ctmc.birth_death import BirthDeathProcess
from ..ctmc.transient import (
    csr_row_sums,
    transient_distribution,
    transient_distribution_batch,
)
from ..errors import ParameterError
from ..manet.network import NetworkModel
from ..params import GCSParameters
from ..spn.analysis import analyze_spn
from ..validation import require_sorted_unique
from .failure import FailureClass
from .fastpath import build_lattice_chain, fill_transition_rates, lattice_structure
from .model import build_gcs_spn
from .rates import GCSRates
from .results import GCSResult, SurvivabilityResult

__all__ = [
    "GCSEvaluation",
    "evaluate",
    "evaluate_batch",
    "evaluate_batch_outcomes",
    "evaluate_survivability",
    "evaluate_survivability_batch",
    "evaluate_survivability_batch_outcomes",
    "resolve_network",
]

#: One batch scenario: bare parameters, or ``(parameters, network)``
#: where ``network=None`` resolves from the parameters (exactly like
#: :func:`evaluate`'s two leading arguments).
BatchScenario = Union[
    GCSParameters, tuple[GCSParameters, Optional[NetworkModel]]
]

#: Soft cap on the batched solver's working set; grid points beyond it
#: are processed in chunks (the structure stays shared across chunks).
DEFAULT_BATCH_BYTES = 512 * 1024 * 1024


def resolve_network(
    params: GCSParameters,
    network: Optional[NetworkModel] = None,
    *,
    use_mobility: bool = False,
    mobility_duration_s: float = 1800.0,
    seed: Optional[int] = None,
) -> NetworkModel:
    """Build the network model a scenario should use.

    Priority: an explicitly supplied ``network``; else explicit
    partition/merge rates from ``params.groups`` grafted onto the
    analytic model; else a mobility-measured model when
    ``use_mobility``; else the closed-form analytic model.
    """
    if network is not None:
        return network
    if params.groups.has_explicit_rates:
        base = NetworkModel.analytic(params.network)
        return NetworkModel(
            params=params.network,
            avg_hops=base.avg_hops,
            partition_rate_hz=params.groups.partition_rate_hz,
            merge_rate_hz=params.groups.merge_rate_hz,
            measured=False,
        )
    if use_mobility:
        return NetworkModel.from_mobility(
            params.network,
            duration_s=mobility_duration_s,
            rng=np.random.default_rng(seed),
        )
    return NetworkModel.analytic(params.network)


@dataclass
class GCSEvaluation:
    """A reusable evaluation engine for one (params, network) scenario.

    Sweeps that vary only the detection configuration should construct a
    fresh engine per point (rates and cost cache are configuration-
    specific) but *reuse the network model* — see
    :class:`repro.core.scenario.Scenario`, which manages exactly that.
    """

    params: GCSParameters
    network: NetworkModel

    def __post_init__(self) -> None:
        bd = BirthDeathProcess.for_group_count(
            self.network.partition_rate_hz,
            self.network.merge_rate_hz,
            self.params.groups.max_groups,
        )
        self.ng_distribution = bd.level_distribution()
        self.expected_groups = bd.mean_level()

    # ------------------------------------------------------------------
    def run(
        self,
        *,
        method: str = "fast",
        include_breakdown: bool = False,
        include_variance: bool = False,
        sizes: Optional[MessageSizes] = None,
        max_states: int = 2_000_000,
    ) -> GCSResult:
        """Evaluate the scenario.

        ``method``: ``"fast"`` (vectorised lattice, decoupled groups —
        the default), ``"spn"`` (generic Figure 1 SPN, decoupled), or
        ``"spn-coupled"`` (``NG`` embedded in the marking; cyclic chain,
        linear solver — small ``N`` only).

        ``include_variance`` additionally computes the exact standard
        deviation of the time to security failure (one extra solver
        sweep; fast path only).
        """
        if method not in ("fast", "spn", "spn-coupled"):
            raise ParameterError(
                f"method must be fast|spn|spn-coupled, got {method!r}"
            )
        if include_variance and method != "fast":
            raise ParameterError(
                "include_variance is only supported by the fast method"
            )
        cost_model = GCSCostModel(
            self.params,
            self.network,
            sizes=sizes,
            ng_distribution=self.ng_distribution,
        )
        if method == "fast":
            return self._run_fast(cost_model, include_breakdown, include_variance)
        return self._run_spn(cost_model, include_breakdown, method, max_states)

    # ------------------------------------------------------------------
    def _run_fast(
        self,
        cost_model: GCSCostModel,
        include_breakdown: bool,
        include_variance: bool = False,
    ) -> GCSResult:
        t0 = time.perf_counter()
        lattice = build_lattice_chain(
            self.params, self.network, expected_groups=self.expected_groups
        )
        n_states = lattice.num_states
        costs = cost_model.cost_vector(
            lattice.t, lattice.u, lattice.d, per_component=include_breakdown
        )
        rewards: dict[str, np.ndarray] = {}
        if include_breakdown:
            total = np.zeros(n_states)
            for name, vec in costs.items():
                padded = np.append(vec, 0.0)  # C1 state accrues nothing
                rewards[f"cost_{name}"] = padded
                total += padded
            rewards["cost"] = total
        else:
            rewards["cost"] = np.append(costs, 0.0)
        build_s = time.perf_counter() - t0

        t1 = time.perf_counter()
        solution = analyze_absorbing(
            lattice.chain,
            initial=lattice.initial_state,
            rewards=rewards,
            absorbing_classes=lattice.absorbing_classes(),
            second_moment=include_variance,
        )
        solve_s = time.perf_counter() - t1

        return self._package(
            solution.mtta,
            solution.expected_reward("cost"),
            {
                str(FailureClass.C1_DATA_LEAK): solution.absorption_probability(
                    "c1_data_leak"
                ),
                str(FailureClass.C2_BYZANTINE): solution.absorption_probability(
                    "c2_byzantine"
                ),
                str(FailureClass.DEPLETION): solution.absorption_probability(
                    "depletion"
                ),
            },
            cost_model,
            n_states,
            solution.method,
            build_s,
            solve_s,
            breakdown={
                name.removeprefix("cost_"): solution.expected_reward(name)
                for name in rewards
                if name != "cost"
            }
            if include_breakdown
            else None,
            mttsf_std=solution.mtta_std if include_variance else None,
        )

    # ------------------------------------------------------------------
    def _run_spn(
        self,
        cost_model: GCSCostModel,
        include_breakdown: bool,
        method: str,
        max_states: int,
    ) -> GCSResult:
        coupled = method == "spn-coupled"
        t0 = time.perf_counter()
        rates = GCSRates.from_scenario(
            self.params,
            self.network,
            expected_groups=1.0 if coupled else self.expected_groups,
        )
        net = build_gcs_spn(
            self.params, self.network, rates=rates, coupled_groups=coupled
        )

        if coupled:
            context = cost_model.context

            def cost_fn(m):
                return context.component_rates(
                    m["Tm"],
                    m["UCm"],
                    m["DCm"],
                    max(m["NG"], 1),
                    detection=cost_model.detection,
                    voting=cost_model.voting,
                ).total

        else:

            def cost_fn(m):
                return cost_model.state_cost_rate(m["Tm"], m["UCm"], m["DCm"])

        def c1(m):
            return m["GF"] > 0

        def c2(m):
            t, u = m["Tm"], m["UCm"]
            return m["GF"] == 0 and u > 0 and 2 * u > t

        def dep(m):
            return m["GF"] == 0 and m["Tm"] + m["UCm"] == 0 and m["DCm"] == 0

        build_s = time.perf_counter() - t0
        t1 = time.perf_counter()
        analysis = analyze_spn(
            net,
            rewards={"cost": cost_fn},
            absorbing_classes={
                "c1_data_leak": c1,
                "c2_byzantine": c2,
                "depletion": dep,
            },
            max_states=max_states,
        )
        solve_s = time.perf_counter() - t1

        if include_breakdown:
            raise ParameterError(
                "include_breakdown is only supported by the fast method; "
                "the SPN paths exist for cross-validation"
            )

        return self._package(
            analysis.mtta,
            analysis.expected_reward("cost"),
            {
                str(FailureClass.C1_DATA_LEAK): analysis.absorption_probability(
                    "c1_data_leak"
                ),
                str(FailureClass.C2_BYZANTINE): analysis.absorption_probability(
                    "c2_byzantine"
                ),
                str(FailureClass.DEPLETION): analysis.absorption_probability(
                    "depletion"
                ),
            },
            cost_model,
            analysis.chain.num_states,
            f"spn/{analysis.solution.method}",
            build_s,
            solve_s,
        )

    # ------------------------------------------------------------------
    def _package(
        self,
        mttsf: float,
        accumulated_cost: float,
        probs: dict[str, float],
        cost_model: GCSCostModel,
        n_states: int,
        solver: str,
        build_s: float,
        solve_s: float,
        *,
        breakdown: Optional[dict[str, float]] = None,
        mttsf_std: Optional[float] = None,
    ) -> GCSResult:
        if mttsf <= 0.0:
            raise ParameterError(
                "MTTSF evaluated to zero: the initial marking is already failed"
            )
        ctotal = accumulated_cost / mttsf
        if breakdown is not None and "total" not in breakdown:
            breakdown = {
                **{k: v / mttsf for k, v in breakdown.items()},
                "total": ctotal,
            }
        return GCSResult(
            params=self.params,
            mttsf_s=mttsf,
            ctotal_hop_bits_s=ctotal,
            failure_probabilities=probs,
            channel_utilization=cost_model.channel_utilization(ctotal),
            num_states=n_states,
            solver=solver,
            build_seconds=build_s,
            solve_seconds=solve_s,
            cost_breakdown=breakdown,
            mttsf_std_s=mttsf_std,
        )


def evaluate(
    params: GCSParameters,
    network: Optional[NetworkModel] = None,
    *,
    method: str = "fast",
    include_breakdown: bool = False,
    include_variance: bool = False,
    sizes: Optional[MessageSizes] = None,
    use_mobility: bool = False,
    seed: Optional[int] = None,
) -> GCSResult:
    """One-shot convenience wrapper around :class:`GCSEvaluation`."""
    net = resolve_network(params, network, use_mobility=use_mobility, seed=seed)
    engine = GCSEvaluation(params, net)
    return engine.run(
        method=method,
        include_breakdown=include_breakdown,
        include_variance=include_variance,
        sizes=sizes,
    )


# ---------------------------------------------------------------------------
# Structure-sharing batched evaluation
# ---------------------------------------------------------------------------

def _as_pair(
    scenario: BatchScenario,
) -> tuple[GCSParameters, Optional[NetworkModel]]:
    if isinstance(scenario, GCSParameters):
        return scenario, None
    try:
        params, network = scenario
    except (TypeError, ValueError):
        raise ParameterError(
            f"batch scenario must be GCSParameters or (params, network), "
            f"got {type(scenario).__name__}"
        ) from None
    if not isinstance(params, GCSParameters):
        raise ParameterError(
            f"batch scenario must be GCSParameters or (params, network), "
            f"got {type(params).__name__}"
        )
    return params, network


@dataclass
class _PreparedPoint:
    """One grid point's rate fill + rewards, ready for the shared sweep."""

    index: int
    params: GCSParameters
    values: np.ndarray
    reward_columns: list[np.ndarray]
    breakdown_names: Optional[list[str]]
    cost_model: GCSCostModel
    build_seconds: float


def _prepare_point(
    structure,
    index: int,
    params: GCSParameters,
    network: Optional[NetworkModel],
    *,
    include_breakdown: bool,
    sizes: Optional[MessageSizes],
) -> _PreparedPoint:
    """Mirror of :meth:`GCSEvaluation._run_fast`'s build stage."""
    t0 = time.perf_counter()
    net = resolve_network(params, network)
    bd = BirthDeathProcess.for_group_count(
        net.partition_rate_hz,
        net.merge_rate_hz,
        params.groups.max_groups,
    )
    ng_distribution = bd.level_distribution()
    expected_groups = bd.mean_level()
    cost_model = GCSCostModel(
        params, net, sizes=sizes, ng_distribution=ng_distribution
    )
    rates = GCSRates.from_scenario(
        params, net, expected_groups=expected_groups
    )
    fill = fill_transition_rates(structure, rates)
    costs = cost_model.cost_vector(
        structure.t, structure.u, structure.d, per_component=include_breakdown
    )
    # Reward columns exactly as the per-point path assembles them: the
    # C1 state accrues nothing, and with a breakdown the total is its
    # own solved column (not the sum of the component solutions).
    reward_columns: list[np.ndarray] = []
    breakdown_names: Optional[list[str]] = None
    if include_breakdown:
        breakdown_names = list(costs)
        total = np.zeros(structure.num_states)
        for vec in costs.values():
            padded = np.append(vec, 0.0)
            reward_columns.append(padded)
            total += padded
        reward_columns.append(total)
    else:
        reward_columns.append(np.append(costs, 0.0))
    return _PreparedPoint(
        index=index,
        params=params,
        values=fill.values,
        reward_columns=reward_columns,
        breakdown_names=breakdown_names,
        cost_model=cost_model,
        build_seconds=time.perf_counter() - t0,
    )


def _chunk_size(structure, n_columns: int, max_batch_bytes: int) -> int:
    """Points per chunk under the working-set byte budget.

    Bounds the whole pipeline, not just the sweep: points are prepared
    (rate fill + reward columns), solved and packaged chunk by chunk.
    """
    n = structure.num_states
    # vals + ELL gather (~nnz each) + numerators, x, second-moment
    # scratch (~n·k each); 8 bytes per float.
    per_point = 8 * (2 * structure.nnz + n * (2 * n_columns + 4))
    return max(1, max_batch_bytes // max(per_point, 1))


def _solve_prepared(
    structure,
    prepared: Sequence[_PreparedPoint],
    *,
    include_variance: bool,
    kernel: Optional[str] = None,
) -> tuple[np.ndarray, Optional[np.ndarray], float]:
    """Run the shared backward sweep for one chunk of prepared points."""
    t0 = time.perf_counter()
    P = len(prepared)
    n = structure.num_states
    n_rewards = len(prepared[0].reward_columns)
    k = 1 + n_rewards + 3

    numer = np.zeros((P, n, k))
    numer[:, :, 0] = 1.0  # hitting-time numerator (ignored at absorbing)
    for j, point in enumerate(prepared):
        for c, column in enumerate(point.reward_columns, start=1):
            numer[j, :, c] = column

    boundary = np.zeros((n, k))
    boundary[structure.c1_state, 1 + n_rewards] = 1.0
    boundary[structure.c2_states, 2 + n_rewards] = 1.0
    boundary[structure.depletion_states, 3 + n_rewards] = 1.0

    values = np.stack([point.values for point in prepared])
    x = solve_dag_batch(structure.dag, values, numer, boundary, kernel=kernel)

    m2: Optional[np.ndarray] = None
    if include_variance:
        numer2 = np.ascontiguousarray(2.0 * x[:, :, 0:1])
        m2 = solve_dag_batch(
            structure.dag, values, numer2, np.zeros((n, 1)), kernel=kernel
        )[:, :, 0]
    return x, m2, time.perf_counter() - t0


def _package_point(
    structure,
    point: _PreparedPoint,
    x: np.ndarray,
    m2: Optional[np.ndarray],
    solve_seconds: float,
) -> GCSResult:
    """Mirror of :meth:`GCSEvaluation._package` for one solved column set."""
    init = structure.initial_state
    n_rewards = len(point.reward_columns)
    mttsf = float(x[init, 0])
    if mttsf <= 0.0:
        raise ParameterError(
            "MTTSF evaluated to zero: the initial marking is already failed"
        )
    accumulated_cost = float(x[init, n_rewards])  # last reward column
    ctotal = accumulated_cost / mttsf
    probs = {
        str(FailureClass.C1_DATA_LEAK): float(x[init, 1 + n_rewards]),
        str(FailureClass.C2_BYZANTINE): float(x[init, 2 + n_rewards]),
        str(FailureClass.DEPLETION): float(x[init, 3 + n_rewards]),
    }
    breakdown: Optional[dict[str, float]] = None
    if point.breakdown_names is not None:
        breakdown = {
            name: float(x[init, 1 + i]) / mttsf
            for i, name in enumerate(point.breakdown_names)
        }
        breakdown["total"] = ctotal
    mttsf_std: Optional[float] = None
    if m2 is not None:
        variance = max(float(m2[init]) - mttsf**2, 0.0)
        mttsf_std = float(np.sqrt(variance))
    return GCSResult(
        params=point.params,
        mttsf_s=mttsf,
        ctotal_hop_bits_s=ctotal,
        failure_probabilities=probs,
        channel_utilization=point.cost_model.channel_utilization(ctotal),
        num_states=structure.num_states,
        solver="acyclic-batch",
        build_seconds=point.build_seconds,
        solve_seconds=solve_seconds,
        cost_breakdown=breakdown,
        mttsf_std_s=mttsf_std,
    )


def evaluate_batch_outcomes(
    scenarios: Sequence[BatchScenario],
    *,
    method: str = "fast",
    include_breakdown: bool = False,
    include_variance: bool = False,
    sizes: Optional[MessageSizes] = None,
    max_batch_bytes: int = DEFAULT_BATCH_BYTES,
    kernel: Optional[str] = None,
) -> list[tuple[Optional[GCSResult], Optional[BaseException]]]:
    """Batched evaluation with per-point error capture.

    Returns one ``(result, error)`` pair per scenario, in input order —
    exactly one of the two is ``None``. A failing point (invalid rates,
    degenerate initial marking, …) never poisons its batch mates; this
    is the contract the engine's
    :class:`~repro.engine.executor.VectorBackend` builds
    :class:`~repro.engine.executor.PointOutcome` records from.

    ``kernel`` selects the batched-sweep tier explicitly
    (``numba``/``fused``/``numpy``); ``None`` follows ``REPRO_KERNEL``
    — see :func:`repro.ctmc.kernels.resolve_kernel`. Every tier
    produces bit-identical results, so the choice never enters cache
    keys or request fingerprints.
    """
    outcomes: list[tuple[Optional[GCSResult], Optional[BaseException]]] = [
        (None, None)
    ] * len(scenarios)
    pairs: list[Optional[tuple[GCSParameters, Optional[NetworkModel]]]] = []
    for i, scenario in enumerate(scenarios):
        try:
            pairs.append(_as_pair(scenario))
        except Exception as exc:  # noqa: BLE001 — per-point capture
            pairs.append(None)
            outcomes[i] = (None, exc)

    if method != "fast":
        # Only the fast lattice path has a shared structure to amortise;
        # SPN requests fall back to the per-point pipeline.
        for i, pair in enumerate(pairs):
            if pair is None:
                continue
            params, network = pair
            try:
                outcomes[i] = (
                    evaluate(
                        params,
                        network,
                        method=method,
                        include_breakdown=include_breakdown,
                        include_variance=include_variance,
                        sizes=sizes,
                    ),
                    None,
                )
            except Exception as exc:  # noqa: BLE001 — per-point capture
                outcomes[i] = (None, exc)
        return outcomes

    # Group by lattice size: points of equal N share one structure.
    by_nodes: dict[int, list[int]] = {}
    for i, pair in enumerate(pairs):
        if pair is not None:
            by_nodes.setdefault(pair[0].num_nodes, []).append(i)

    for num_nodes, group in by_nodes.items():
        structure = lattice_structure(num_nodes)
        n_rewards = (len(COMPONENT_NAMES) + 1) if include_breakdown else 1
        chunk = _chunk_size(structure, 1 + n_rewards + 3, max_batch_bytes)
        # Points are prepared chunk by chunk — a _PreparedPoint holds
        # nnz- and n-sized arrays, so preparing a whole group up front
        # would let a large sweep blow straight through the byte budget
        # the chunking exists to enforce.
        for start in range(0, len(group), chunk):
            prepared: list[_PreparedPoint] = []
            for i in group[start : start + chunk]:
                params, network = pairs[i]
                try:
                    prepared.append(
                        _prepare_point(
                            structure,
                            i,
                            params,
                            network,
                            include_breakdown=include_breakdown,
                            sizes=sizes,
                        )
                    )
                except Exception as exc:  # noqa: BLE001 — per-point capture
                    outcomes[i] = (None, exc)
            if not prepared:
                continue
            x, m2, elapsed = _solve_prepared(
                structure,
                prepared,
                include_variance=include_variance,
                kernel=kernel,
            )
            share = elapsed / len(prepared)
            for j, point in enumerate(prepared):
                try:
                    outcomes[point.index] = (
                        _package_point(
                            structure,
                            point,
                            x[j],
                            m2[j] if m2 is not None else None,
                            share,
                        ),
                        None,
                    )
                except Exception as exc:  # noqa: BLE001 — per-point capture
                    outcomes[point.index] = (None, exc)

    return outcomes


# ---------------------------------------------------------------------------
# Time-bounded survivability (transient analysis)
# ---------------------------------------------------------------------------

def _validate_mission_times(times: Sequence[float]) -> tuple[float, ...]:
    times = require_sorted_unique("times", times)
    if times[0] < 0.0:
        raise ParameterError(f"times must be non-negative, got {times[0]!r}")
    return times


def _survivability_curves(
    dist: np.ndarray,
    times: tuple[float, ...],
    cost_padded: np.ndarray,
    initial_state: int,
    class_members: dict[str, list[int]],
    absorbing_mask: np.ndarray,
) -> tuple[np.ndarray, dict[str, np.ndarray], np.ndarray, np.ndarray]:
    """Survival / CDF / cost curves from one point's ``(T, n)`` distributions.

    The quadrature for the time-bounded cost is a trapezoid over the
    mission grid anchored at ``t = 0`` with the initial marking's exact
    cost rate (``π(0)`` is a point mass, so ``c(0) = cost[initial]``).
    """
    ts = np.asarray(times)
    cdf: dict[str, np.ndarray] = {
        "any": (dist * absorbing_mask[None, :]).sum(axis=1)
    }
    for name, members in class_members.items():
        idx = np.asarray(members, dtype=int)
        cdf[name] = (
            dist[:, idx].sum(axis=1) if idx.size else np.zeros(ts.size)
        )
    survival = 1.0 - cdf["any"]
    cost_rate = dist @ cost_padded
    if ts[0] == 0.0:
        full_t, full_c = ts, cost_rate
    else:
        full_t = np.concatenate([[0.0], ts])
        full_c = np.concatenate([[cost_padded[initial_state]], cost_rate])
    segments = 0.5 * (full_c[1:] + full_c[:-1]) * np.diff(full_t)
    cumulative = np.concatenate([[0.0], np.cumsum(segments)])
    bounded = cumulative[-ts.size:]
    return survival, cdf, cost_rate, bounded


def evaluate_survivability(
    params: GCSParameters,
    network: Optional[NetworkModel] = None,
    *,
    times: Sequence[float],
    sizes: Optional[MessageSizes] = None,
    eps: float = 1e-12,
) -> SurvivabilityResult:
    """Survivability curve ``S(t)`` of one scenario over mission ``times``.

    The per-point reference path: builds the fast-lattice chain and runs
    uniformization (:func:`repro.ctmc.transient.transient_distribution`)
    over the strictly increasing, non-negative mission-time grid. The
    batched counterpart is :func:`evaluate_survivability_batch`.
    """
    times = _validate_mission_times(times)
    t0 = time.perf_counter()
    net = resolve_network(params, network)
    bd = BirthDeathProcess.for_group_count(
        net.partition_rate_hz, net.merge_rate_hz, params.groups.max_groups
    )
    lattice = build_lattice_chain(
        params, net, expected_groups=bd.mean_level()
    )
    cost_model = GCSCostModel(
        params, net, sizes=sizes, ng_distribution=bd.level_distribution()
    )
    costs = cost_model.cost_vector(lattice.t, lattice.u, lattice.d)
    cost_padded = np.append(costs, 0.0)  # C1 state accrues nothing
    build_s = time.perf_counter() - t0

    t1 = time.perf_counter()
    dist = np.atleast_2d(
        transient_distribution(
            lattice.chain, times, lattice.initial_state, eps=eps
        )
    )
    survival, cdf, cost_rate, bounded = _survivability_curves(
        dist,
        times,
        cost_padded,
        lattice.initial_state,
        lattice.absorbing_classes(),
        lattice.chain.absorbing_mask,
    )
    solve_s = time.perf_counter() - t1

    return SurvivabilityResult(
        params=params,
        times_s=times,
        survival=tuple(float(s) for s in survival),
        failure_cdf={k: tuple(float(x) for x in v) for k, v in cdf.items()},
        expected_cost_rate=tuple(float(c) for c in cost_rate),
        time_bounded_cost=tuple(float(c) for c in bounded),
        num_states=lattice.num_states,
        solver="uniformization",
        build_seconds=build_s,
        solve_seconds=solve_s,
    )


def _survivability_chunk_size(
    structure, n_times: int, max_batch_bytes: int
) -> int:
    """Points per chunk under the working-set byte budget.

    Per point the batched uniformization holds the rate fill, the
    column-sorted gather copy and the per-step contribution (~nnz
    each) plus the accumulator, power vector and out-rate/diagonal
    rows (~n each); 8 bytes per float.
    """
    n = structure.num_states
    per_point = 8 * (3 * structure.nnz + n * (n_times + 4))
    return max(1, max_batch_bytes // max(per_point, 1))


def evaluate_survivability_batch_outcomes(
    scenarios: Sequence[BatchScenario],
    *,
    times: Sequence[float],
    sizes: Optional[MessageSizes] = None,
    eps: float = 1e-12,
    max_batch_bytes: int = DEFAULT_BATCH_BYTES,
    kernel: Optional[str] = None,
    transient_backend: Optional[str] = None,
) -> list[tuple[Optional[SurvivabilityResult], Optional[BaseException]]]:
    """Batched survivability with per-point error capture.

    Mirrors :func:`evaluate_batch_outcomes`: one ``(result, error)``
    pair per scenario in input order, grouped by lattice size so every
    group shares one cached :class:`~repro.core.fastpath.LatticeStructure`
    and one multi-point uniformization sweep
    (:func:`repro.ctmc.transient.transient_distribution_batch`).
    ``kernel`` picks the matvec tier and ``transient_backend`` the
    algorithm (``uniformization``/``expm``); both default to their
    environment switches (``REPRO_KERNEL`` /
    ``REPRO_TRANSIENT_BACKEND``).
    """
    outcomes: list[
        tuple[Optional[SurvivabilityResult], Optional[BaseException]]
    ] = [(None, None)] * len(scenarios)
    try:
        times = _validate_mission_times(times)
    except Exception as exc:  # noqa: BLE001 — shared-argument failure
        # A bad shared time grid fails every point identically, exactly
        # as a per-point loop would — keeps backend semantics equal.
        return [(None, exc)] * len(scenarios)
    pairs: list[Optional[tuple[GCSParameters, Optional[NetworkModel]]]] = []
    for i, scenario in enumerate(scenarios):
        try:
            pairs.append(_as_pair(scenario))
        except Exception as exc:  # noqa: BLE001 — per-point capture
            pairs.append(None)
            outcomes[i] = (None, exc)

    by_nodes: dict[int, list[int]] = {}
    for i, pair in enumerate(pairs):
        if pair is not None:
            by_nodes.setdefault(pair[0].num_nodes, []).append(i)

    for num_nodes, group in by_nodes.items():
        structure = lattice_structure(num_nodes)
        class_members = structure.absorbing_classes()
        chunk = _survivability_chunk_size(structure, len(times), max_batch_bytes)
        for start in range(0, len(group), chunk):
            prepared: list[_PreparedPoint] = []
            for i in group[start : start + chunk]:
                params, network = pairs[i]
                try:
                    prepared.append(
                        _prepare_point(
                            structure,
                            i,
                            params,
                            network,
                            include_breakdown=False,
                            sizes=sizes,
                        )
                    )
                except Exception as exc:  # noqa: BLE001 — per-point capture
                    outcomes[i] = (None, exc)
            if not prepared:
                continue
            t0 = time.perf_counter()
            values = np.stack([point.values for point in prepared])
            try:
                dist = transient_distribution_batch(
                    structure.indptr,
                    structure.indices,
                    values,
                    np.asarray(times),
                    structure.initial_state,
                    eps=eps,
                    kernel=kernel,
                    backend=transient_backend,
                )
            except Exception as exc:  # noqa: BLE001 — chunk-level capture
                # A shared-sweep failure (e.g. invalid eps) fails every
                # chunk member, matching per-point loop semantics.
                for point in prepared:
                    outcomes[point.index] = (None, exc)
                continue
            share = (time.perf_counter() - t0) / len(prepared)
            q = csr_row_sums(structure.indptr, values)
            for j, point in enumerate(prepared):
                try:
                    survival, cdf, cost_rate, bounded = _survivability_curves(
                        dist[j],
                        times,
                        point.reward_columns[0],
                        structure.initial_state,
                        class_members,
                        q[j] == 0.0,
                    )
                    outcomes[point.index] = (
                        SurvivabilityResult(
                            params=point.params,
                            times_s=times,
                            survival=tuple(float(s) for s in survival),
                            failure_cdf={
                                k: tuple(float(x) for x in v)
                                for k, v in cdf.items()
                            },
                            expected_cost_rate=tuple(
                                float(c) for c in cost_rate
                            ),
                            time_bounded_cost=tuple(float(c) for c in bounded),
                            num_states=structure.num_states,
                            solver="uniformization-batch",
                            build_seconds=point.build_seconds,
                            solve_seconds=share,
                        ),
                        None,
                    )
                except Exception as exc:  # noqa: BLE001 — per-point capture
                    outcomes[point.index] = (None, exc)

    return outcomes


def evaluate_survivability_batch(
    scenarios: Sequence[BatchScenario],
    *,
    times: Sequence[float],
    sizes: Optional[MessageSizes] = None,
    eps: float = 1e-12,
    max_batch_bytes: int = DEFAULT_BATCH_BYTES,
) -> list[SurvivabilityResult]:
    """Evaluate survivability curves for many scenarios in one sweep.

    The batched counterpart of :func:`evaluate_survivability`: points
    are grouped by ``num_nodes``, rate fills stacked, and one
    multi-point uniformization pass computes every point's transient
    distributions over the whole mission grid — numerically equivalent
    to the per-point path within
    :data:`repro.ctmc.transient.BATCH_EQUIVALENCE_RTOL` (asserted by
    the differential test layer). Raises the first per-point failure;
    use :func:`evaluate_survivability_batch_outcomes` for capture.
    """
    outcomes = evaluate_survivability_batch_outcomes(
        scenarios,
        times=times,
        sizes=sizes,
        eps=eps,
        max_batch_bytes=max_batch_bytes,
    )
    results: list[SurvivabilityResult] = []
    for result, error in outcomes:
        if error is not None:
            raise error
        assert result is not None
        results.append(result)
    return results


def evaluate_batch(
    scenarios: Sequence[BatchScenario],
    *,
    method: str = "fast",
    include_breakdown: bool = False,
    include_variance: bool = False,
    sizes: Optional[MessageSizes] = None,
    max_batch_bytes: int = DEFAULT_BATCH_BYTES,
) -> list[GCSResult]:
    """Evaluate many scenarios with one structure-sharing solver sweep.

    The batched counterpart of :func:`evaluate`: grid points are
    grouped by ``num_nodes`` (each group shares one cached lattice
    structure), their rate fills are stacked, and a single multi-point
    level-scheduled backward sweep solves every point simultaneously —
    including the variance sweep when ``include_variance`` is set.
    Results are **bit-identical** to calling :func:`evaluate` per point
    (asserted by the test suite) and come back in input order.

    Raises the first per-point failure, matching the exception
    semantics of a serial loop; use :func:`evaluate_batch_outcomes`
    for per-point error capture.
    """
    outcomes = evaluate_batch_outcomes(
        scenarios,
        method=method,
        include_breakdown=include_breakdown,
        include_variance=include_variance,
        sizes=sizes,
        max_batch_bytes=max_batch_bytes,
    )
    results: list[GCSResult] = []
    for result, error in outcomes:
        if error is not None:
            raise error
        assert result is not None
        results.append(result)
    return results
