"""The ``evaluate()`` pipeline: parameters → MTTSF + Ĉtotal.

This is the reproduction's main entry point. It assembles the scenario
(network model, ``NG`` birth–death distribution, rate bundle, cost
model), builds the security chain (vectorised lattice by default, the
literal Figure 1 SPN on request), and runs the absorbing analysis:

* **MTTSF** = mean time to absorption from the all-trusted marking;
* **Ĉtotal** = expected accumulated communication cost ÷ MTTSF;
* failure-mode split across C1 / C2 / depletion.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..costs.aggregate import GCSCostModel
from ..costs.sizes import MessageSizes
from ..ctmc.absorbing import analyze_absorbing
from ..ctmc.birth_death import BirthDeathProcess
from ..errors import ParameterError
from ..manet.network import NetworkModel
from ..params import GCSParameters
from ..spn.analysis import analyze_spn
from .failure import FailureClass
from .fastpath import build_lattice_chain
from .model import build_gcs_spn
from .rates import GCSRates
from .results import GCSResult

__all__ = ["GCSEvaluation", "evaluate", "resolve_network"]


def resolve_network(
    params: GCSParameters,
    network: Optional[NetworkModel] = None,
    *,
    use_mobility: bool = False,
    mobility_duration_s: float = 1800.0,
    seed: Optional[int] = None,
) -> NetworkModel:
    """Build the network model a scenario should use.

    Priority: an explicitly supplied ``network``; else explicit
    partition/merge rates from ``params.groups`` grafted onto the
    analytic model; else a mobility-measured model when
    ``use_mobility``; else the closed-form analytic model.
    """
    if network is not None:
        return network
    if params.groups.has_explicit_rates:
        base = NetworkModel.analytic(params.network)
        return NetworkModel(
            params=params.network,
            avg_hops=base.avg_hops,
            partition_rate_hz=params.groups.partition_rate_hz,
            merge_rate_hz=params.groups.merge_rate_hz,
            measured=False,
        )
    if use_mobility:
        return NetworkModel.from_mobility(
            params.network,
            duration_s=mobility_duration_s,
            rng=np.random.default_rng(seed),
        )
    return NetworkModel.analytic(params.network)


@dataclass
class GCSEvaluation:
    """A reusable evaluation engine for one (params, network) scenario.

    Sweeps that vary only the detection configuration should construct a
    fresh engine per point (rates and cost cache are configuration-
    specific) but *reuse the network model* — see
    :class:`repro.core.scenario.Scenario`, which manages exactly that.
    """

    params: GCSParameters
    network: NetworkModel

    def __post_init__(self) -> None:
        bd = BirthDeathProcess.for_group_count(
            self.network.partition_rate_hz,
            self.network.merge_rate_hz,
            self.params.groups.max_groups,
        )
        self.ng_distribution = bd.level_distribution()
        self.expected_groups = bd.mean_level()

    # ------------------------------------------------------------------
    def run(
        self,
        *,
        method: str = "fast",
        include_breakdown: bool = False,
        include_variance: bool = False,
        sizes: Optional[MessageSizes] = None,
        max_states: int = 2_000_000,
    ) -> GCSResult:
        """Evaluate the scenario.

        ``method``: ``"fast"`` (vectorised lattice, decoupled groups —
        the default), ``"spn"`` (generic Figure 1 SPN, decoupled), or
        ``"spn-coupled"`` (``NG`` embedded in the marking; cyclic chain,
        linear solver — small ``N`` only).

        ``include_variance`` additionally computes the exact standard
        deviation of the time to security failure (one extra solver
        sweep; fast path only).
        """
        if method not in ("fast", "spn", "spn-coupled"):
            raise ParameterError(
                f"method must be fast|spn|spn-coupled, got {method!r}"
            )
        if include_variance and method != "fast":
            raise ParameterError(
                "include_variance is only supported by the fast method"
            )
        cost_model = GCSCostModel(
            self.params,
            self.network,
            sizes=sizes,
            ng_distribution=self.ng_distribution,
        )
        if method == "fast":
            return self._run_fast(cost_model, include_breakdown, include_variance)
        return self._run_spn(cost_model, include_breakdown, method, max_states)

    # ------------------------------------------------------------------
    def _run_fast(
        self,
        cost_model: GCSCostModel,
        include_breakdown: bool,
        include_variance: bool = False,
    ) -> GCSResult:
        t0 = time.perf_counter()
        lattice = build_lattice_chain(
            self.params, self.network, expected_groups=self.expected_groups
        )
        n_states = lattice.num_states
        costs = cost_model.cost_vector(
            lattice.t, lattice.u, lattice.d, per_component=include_breakdown
        )
        rewards: dict[str, np.ndarray] = {}
        if include_breakdown:
            total = np.zeros(n_states)
            for name, vec in costs.items():
                padded = np.append(vec, 0.0)  # C1 state accrues nothing
                rewards[f"cost_{name}"] = padded
                total += padded
            rewards["cost"] = total
        else:
            rewards["cost"] = np.append(costs, 0.0)
        build_s = time.perf_counter() - t0

        t1 = time.perf_counter()
        solution = analyze_absorbing(
            lattice.chain,
            initial=lattice.initial_state,
            rewards=rewards,
            absorbing_classes=lattice.absorbing_classes(),
            second_moment=include_variance,
        )
        solve_s = time.perf_counter() - t1

        return self._package(
            solution.mtta,
            solution.expected_reward("cost"),
            {
                str(FailureClass.C1_DATA_LEAK): solution.absorption_probability("c1_data_leak"),
                str(FailureClass.C2_BYZANTINE): solution.absorption_probability("c2_byzantine"),
                str(FailureClass.DEPLETION): solution.absorption_probability("depletion"),
            },
            cost_model,
            n_states,
            solution.method,
            build_s,
            solve_s,
            breakdown={
                name.removeprefix("cost_"): solution.expected_reward(name)
                for name in rewards
                if name != "cost"
            }
            if include_breakdown
            else None,
            mttsf_std=solution.mtta_std if include_variance else None,
        )

    # ------------------------------------------------------------------
    def _run_spn(
        self,
        cost_model: GCSCostModel,
        include_breakdown: bool,
        method: str,
        max_states: int,
    ) -> GCSResult:
        coupled = method == "spn-coupled"
        t0 = time.perf_counter()
        rates = GCSRates.from_scenario(
            self.params,
            self.network,
            expected_groups=1.0 if coupled else self.expected_groups,
        )
        net = build_gcs_spn(
            self.params, self.network, rates=rates, coupled_groups=coupled
        )

        if coupled:
            context = cost_model.context

            def cost_fn(m):
                return context.component_rates(
                    m["Tm"],
                    m["UCm"],
                    m["DCm"],
                    max(m["NG"], 1),
                    detection=cost_model.detection,
                    voting=cost_model.voting,
                ).total

        else:

            def cost_fn(m):
                return cost_model.state_cost_rate(m["Tm"], m["UCm"], m["DCm"])

        def c1(m):
            return m["GF"] > 0

        def c2(m):
            t, u = m["Tm"], m["UCm"]
            return m["GF"] == 0 and u > 0 and 2 * u > t

        def dep(m):
            return m["GF"] == 0 and m["Tm"] + m["UCm"] == 0 and m["DCm"] == 0

        build_s = time.perf_counter() - t0
        t1 = time.perf_counter()
        analysis = analyze_spn(
            net,
            rewards={"cost": cost_fn},
            absorbing_classes={
                "c1_data_leak": c1,
                "c2_byzantine": c2,
                "depletion": dep,
            },
            max_states=max_states,
        )
        solve_s = time.perf_counter() - t1

        if include_breakdown:
            raise ParameterError(
                "include_breakdown is only supported by the fast method; "
                "the SPN paths exist for cross-validation"
            )

        return self._package(
            analysis.mtta,
            analysis.expected_reward("cost"),
            {
                str(FailureClass.C1_DATA_LEAK): analysis.absorption_probability("c1_data_leak"),
                str(FailureClass.C2_BYZANTINE): analysis.absorption_probability("c2_byzantine"),
                str(FailureClass.DEPLETION): analysis.absorption_probability("depletion"),
            },
            cost_model,
            analysis.chain.num_states,
            f"spn/{analysis.solution.method}",
            build_s,
            solve_s,
        )

    # ------------------------------------------------------------------
    def _package(
        self,
        mttsf: float,
        accumulated_cost: float,
        probs: dict[str, float],
        cost_model: GCSCostModel,
        n_states: int,
        solver: str,
        build_s: float,
        solve_s: float,
        *,
        breakdown: Optional[dict[str, float]] = None,
        mttsf_std: Optional[float] = None,
    ) -> GCSResult:
        if mttsf <= 0.0:
            raise ParameterError(
                "MTTSF evaluated to zero: the initial marking is already failed"
            )
        ctotal = accumulated_cost / mttsf
        if breakdown is not None and "total" not in breakdown:
            breakdown = {
                **{k: v / mttsf for k, v in breakdown.items()},
                "total": ctotal,
            }
        return GCSResult(
            params=self.params,
            mttsf_s=mttsf,
            ctotal_hop_bits_s=ctotal,
            failure_probabilities=probs,
            channel_utilization=cost_model.channel_utilization(ctotal),
            num_states=n_states,
            solver=solver,
            build_seconds=build_s,
            solve_seconds=solve_s,
            cost_breakdown=breakdown,
            mttsf_std_s=mttsf_std,
        )


def evaluate(
    params: GCSParameters,
    network: Optional[NetworkModel] = None,
    *,
    method: str = "fast",
    include_breakdown: bool = False,
    include_variance: bool = False,
    sizes: Optional[MessageSizes] = None,
    use_mobility: bool = False,
    seed: Optional[int] = None,
) -> GCSResult:
    """One-shot convenience wrapper around :class:`GCSEvaluation`."""
    net = resolve_network(params, network, use_mobility=use_mobility, seed=seed)
    engine = GCSEvaluation(params, net)
    return engine.run(
        method=method,
        include_breakdown=include_breakdown,
        include_variance=include_variance,
        sizes=sizes,
    )
