"""Result containers for GCS model evaluations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..params import GCSParameters

__all__ = ["GCSResult", "SurvivabilityResult"]


@dataclass(frozen=True)
class GCSResult:
    """Outcome of one model evaluation (one parameter point).

    ``mttsf_s`` is the paper's security metric; ``ctotal_hop_bits_s``
    the performance metric (lifetime-averaged total communication
    traffic). ``failure_probabilities`` splits absorption mass across
    C1 (data leak), C2 (Byzantine) and depletion.
    """

    params: GCSParameters
    mttsf_s: float
    ctotal_hop_bits_s: float
    failure_probabilities: Mapping[str, float]
    channel_utilization: float
    num_states: int
    solver: str
    build_seconds: float
    solve_seconds: float
    cost_breakdown: Optional[Mapping[str, float]] = None
    #: Exact standard deviation of the time to security failure (only
    #: when evaluated with ``include_variance=True``).
    mttsf_std_s: Optional[float] = None

    @property
    def mttsf_hours(self) -> float:
        return self.mttsf_s / 3600.0

    @property
    def mttsf_days(self) -> float:
        return self.mttsf_s / 86400.0

    @property
    def dominant_failure_mode(self) -> str:
        """The absorbing class with the largest probability."""
        return max(self.failure_probabilities, key=self.failure_probabilities.get)

    def meets_mission_time(self, mission_time_s: float) -> bool:
        """Does the MTTSF exceed the required mission time?"""
        return self.mttsf_s >= mission_time_s

    @property
    def mttsf_cv(self) -> float:
        """Coefficient of variation of the time to security failure."""
        if self.mttsf_std_s is None:
            raise ValueError(
                "variance not computed; evaluate with include_variance=True"
            )
        return self.mttsf_std_s / self.mttsf_s

    def survival_probability_lower_bound(self, mission_time_s: float) -> float:
        """Distribution-free lower bound on P(survive past ``t``).

        One-sided Cantelli inequality on the failure time ``T`` with the
        exact first two moments: for ``t < E[T]``,
        ``P(T <= t) <= σ² / (σ² + (E[T] - t)²)``, hence
        ``P(T > t) >= (E[T] - t)² / (σ² + (E[T] - t)²)``. Returns 0 for
        ``t >= E[T]`` (the bound is vacuous there).
        """
        if self.mttsf_std_s is None:
            raise ValueError(
                "variance not computed; evaluate with include_variance=True"
            )
        if mission_time_s < 0:
            raise ValueError("mission_time_s must be >= 0")
        gap = self.mttsf_s - mission_time_s
        if gap <= 0:
            return 0.0
        var = self.mttsf_std_s**2
        return gap**2 / (var + gap**2)

    def summary(self) -> str:
        """One-paragraph human-readable report."""
        probs = ", ".join(
            f"{k}={v:.3f}" for k, v in sorted(self.failure_probabilities.items())
        )
        lines = [
            f"{self.params.describe()}",
            f"  MTTSF     = {self.mttsf_s:.4g} s ({self.mttsf_days:.2f} days)",
            f"  Ctotal    = {self.ctotal_hop_bits_s:.4g} hop-bits/s "
            f"(channel utilization {self.channel_utilization:.1%})",
            f"  failure   : {probs}",
            f"  solved    : {self.num_states} states via {self.solver} "
            f"(build {self.build_seconds:.2f}s, solve {self.solve_seconds:.2f}s)",
        ]
        if self.cost_breakdown:
            parts = ", ".join(
                f"{k}={v:.3g}" for k, v in self.cost_breakdown.items()
            )
            lines.append(f"  cost/s    : {parts}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serialisable record (analysis artifacts)."""
        out = {
            "mttsf_s": self.mttsf_s,
            "ctotal_hop_bits_s": self.ctotal_hop_bits_s,
            "failure_probabilities": dict(self.failure_probabilities),
            "channel_utilization": self.channel_utilization,
            "num_states": self.num_states,
            "solver": self.solver,
            "build_seconds": self.build_seconds,
            "solve_seconds": self.solve_seconds,
            "params": self.params.to_dict(),
        }
        if self.cost_breakdown is not None:
            out["cost_breakdown"] = dict(self.cost_breakdown)
        if self.mttsf_std_s is not None:
            out["mttsf_std_s"] = self.mttsf_std_s
        return out


@dataclass(frozen=True)
class SurvivabilityResult:
    """Time-bounded survivability of one parameter point.

    Where :class:`GCSResult` carries the steady-state absorption
    quantities (MTTSF, Ĉtotal), this carries the *transient* story over
    a mission-time grid: ``survival[i]`` is ``S(t_i) = P(no security
    failure by times_s[i])``, ``failure_cdf`` splits the absorbed mass
    per failure class (defective CDFs plus ``"any"``),
    ``expected_cost_rate[i]`` is the instantaneous expected
    communication cost rate at ``t_i``, and ``time_bounded_cost[i]``
    the trapezoidal estimate of the cost accumulated over ``[0, t_i]``
    (anchored at ``t = 0`` with the initial marking's cost rate).
    """

    params: GCSParameters
    times_s: tuple[float, ...]
    survival: tuple[float, ...]
    failure_cdf: Mapping[str, tuple[float, ...]]
    expected_cost_rate: tuple[float, ...]
    time_bounded_cost: tuple[float, ...]
    num_states: int
    solver: str
    build_seconds: float
    solve_seconds: float

    def survival_at(self, mission_time_s: float) -> float:
        """``S(t)`` linearly interpolated on the evaluated grid.

        Clamped to the grid: ``t`` below ``times_s[0]`` returns the
        first value (1.0 when the grid starts at 0), beyond the last
        grid point the last value.
        """
        import numpy as np

        if mission_time_s < 0:
            raise ValueError("mission_time_s must be >= 0")
        return float(np.interp(mission_time_s, self.times_s, self.survival))

    def meets_mission_reliability(
        self, mission_time_s: float, reliability: float
    ) -> bool:
        """Does ``S(mission_time_s)`` meet the required reliability?"""
        return self.survival_at(mission_time_s) >= reliability

    @property
    def dominant_failure_mode(self) -> str:
        """The failure class with the most mass at the last grid point."""
        named = {k: v for k, v in self.failure_cdf.items() if k != "any"}
        return max(named, key=lambda k: named[k][-1])

    def summary(self) -> str:
        """One-paragraph human-readable report."""
        head = self.times_s[0]
        tail = self.times_s[-1]
        lines = [
            f"{self.params.describe()}",
            f"  grid      : {len(self.times_s)} mission times in "
            f"[{head:g}, {tail:g}] s",
            f"  S(t)      : {self.survival[0]:.6f} @ {head:g}s -> "
            f"{self.survival[-1]:.6f} @ {tail:g}s",
            f"  cost[0,T] = {self.time_bounded_cost[-1]:.4g} hop-bits "
            f"(rate {self.expected_cost_rate[-1]:.4g} at {tail:g}s)",
            f"  solved    : {self.num_states} states via {self.solver} "
            f"(build {self.build_seconds:.2f}s, solve {self.solve_seconds:.2f}s)",
        ]
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serialisable record (cache + analysis artifacts)."""
        return {
            "kind": "survivability",
            "times_s": list(self.times_s),
            "survival": list(self.survival),
            "failure_cdf": {k: list(v) for k, v in self.failure_cdf.items()},
            "expected_cost_rate": list(self.expected_cost_rate),
            "time_bounded_cost": list(self.time_bounded_cost),
            "num_states": self.num_states,
            "solver": self.solver,
            "build_seconds": self.build_seconds,
            "solve_seconds": self.solve_seconds,
            "params": self.params.to_dict(),
        }
