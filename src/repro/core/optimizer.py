"""Optimal-``TIDS`` identification and the security↔performance tradeoff.

The paper's design question: given the attacker strength observed at
runtime, pick the base detection interval ``TIDS`` (and the detection
function) that maximises MTTSF while keeping the total communication
cost within the system's performance requirement. This module provides:

* :func:`optimize_tids` — sweep a ``TIDS`` grid, return the best point
  by a chosen objective (max MTTSF, min Ĉtotal, or max MTTSF subject to
  a Ĉtotal ceiling);
* :func:`tradeoff_curve` — the full (TIDS, MTTSF, Ĉtotal) frontier a
  system designer reads the tradeoff from (Figures 2–5 are exactly
  these curves).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Union

from ..errors import ParameterError
from ..manet.network import NetworkModel
from ..params import GCSParameters
from ..validation import require_sorted_unique
from .metrics import GCSEvaluation, evaluate_batch, resolve_network
from .results import GCSResult

__all__ = [
    "TradeoffPoint",
    "OptimizationResult",
    "tradeoff_curve",
    "select_optimum",
    "optimize_tids",
]


@dataclass(frozen=True)
class TradeoffPoint:
    """One sweep point of the tradeoff frontier."""

    tids_s: float
    result: GCSResult

    @property
    def mttsf_s(self) -> float:
        return self.result.mttsf_s

    @property
    def ctotal_hop_bits_s(self) -> float:
        return self.result.ctotal_hop_bits_s


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of an optimal-``TIDS`` search."""

    objective: str
    best: Optional[TradeoffPoint]
    curve: tuple[TradeoffPoint, ...]
    cost_ceiling_hop_bits_s: Optional[float] = None

    @property
    def feasible(self) -> bool:
        """False when a cost ceiling excluded every grid point."""
        return self.best is not None

    @property
    def optimal_tids_s(self) -> float:
        if self.best is None:
            raise ParameterError("no feasible point; inspect .curve")
        return self.best.tids_s

    @property
    def best_index(self) -> Optional[int]:
        """Curve index of the optimum (identity, not float equality —
        distinct curve points can share a ``tids_s`` value when callers
        stitch curves together)."""
        if self.best is None:
            return None
        for i, point in enumerate(self.curve):
            if point is self.best:
                return i
        return None  # pragma: no cover — best always comes from curve

    def summary(self) -> str:
        lines = [f"objective: {self.objective}"]
        if self.cost_ceiling_hop_bits_s is not None:
            lines[0] += f" (Ctotal <= {self.cost_ceiling_hop_bits_s:g} hop-bits/s)"
        best_index = self.best_index
        for i, point in enumerate(self.curve):
            marker = " <== optimal" if i == best_index else ""
            lines.append(
                f"  TIDS={point.tids_s:7.4g}s  MTTSF={point.mttsf_s:10.4g}s  "
                f"Ctotal={point.ctotal_hop_bits_s:10.4g}{marker}"
            )
        if self.best is None:
            lines.append("  NO FEASIBLE POINT under the cost ceiling")
        return "\n".join(lines)


def _evaluate_point(
    params: GCSParameters,
    tids: float,
    network: NetworkModel,
    method: str,
) -> TradeoffPoint:
    """Worker for one sweep point (module-level: multiprocessing needs
    a picklable callable)."""
    p = params.replacing(detection_interval_s=float(tids))
    engine = GCSEvaluation(p, network)
    return TradeoffPoint(tids_s=float(tids), result=engine.run(method=method))


def tradeoff_curve(
    params: GCSParameters,
    tids_grid_s: Sequence[float],
    *,
    network: Optional[NetworkModel] = None,
    method: str = "fast",
    progress: Optional[Callable[[TradeoffPoint], None]] = None,
    workers: Union[int, str, None] = None,
) -> list[TradeoffPoint]:
    """Evaluate the scenario at every ``TIDS`` in the grid.

    The network/mobility stage is resolved once and shared across the
    sweep (the detection interval does not affect mobility).

    ``workers`` > 1 evaluates grid points in parallel with a process
    pool — sweep points are embarrassingly parallel and each solve is
    single-threaded, so the speedup is near-linear until memory
    bandwidth saturates. Results are returned in grid order either way;
    ``progress`` fires in completion order when parallel.

    ``workers="vector"`` solves the whole grid in one structure-sharing
    batched sweep (:func:`repro.core.metrics.evaluate_batch`) — no
    processes, bit-identical results, and typically faster than a
    process pool because the win is algorithmic, not parallel.
    """
    grid = require_sorted_unique("tids_grid_s", tids_grid_s)
    net = resolve_network(params, network)

    if isinstance(workers, str):
        if workers != "vector":
            raise ParameterError(
                f"workers must be an int or 'vector', got {workers!r}"
            )
        results = evaluate_batch(
            [
                (params.replacing(detection_interval_s=float(tids)), net)
                for tids in grid
            ],
            method=method,
        )
        points = [
            TradeoffPoint(tids_s=float(tids), result=result)
            for tids, result in zip(grid, results)
        ]
        if progress is not None:
            for point in points:
                progress(point)
        return points

    if workers is not None and workers < 1:
        raise ParameterError(f"workers must be >= 1, got {workers}")
    if workers and workers > 1 and len(grid) > 1:
        import concurrent.futures

        points_by_tids: dict[float, TradeoffPoint] = {}
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(workers, len(grid))
        ) as pool:
            futures = {
                pool.submit(_evaluate_point, params, tids, net, method): tids
                for tids in grid
            }
            for future in concurrent.futures.as_completed(futures):
                point = future.result()
                points_by_tids[point.tids_s] = point
                if progress is not None:
                    progress(point)
        return [points_by_tids[float(t)] for t in grid]

    points: list[TradeoffPoint] = []
    for tids in grid:
        point = _evaluate_point(params, tids, net, method)
        points.append(point)
        if progress is not None:
            progress(point)
    return points


def _validate_objective(
    objective: str, cost_ceiling_hop_bits_s: Optional[float]
) -> None:
    if objective not in ("max-mttsf", "min-ctotal"):
        raise ParameterError(
            f"objective must be max-mttsf|min-ctotal, got {objective!r}"
        )
    if cost_ceiling_hop_bits_s is not None and cost_ceiling_hop_bits_s <= 0:
        raise ParameterError("cost_ceiling_hop_bits_s must be > 0")
    if objective == "min-ctotal" and cost_ceiling_hop_bits_s is not None:
        raise ParameterError("a cost ceiling only applies to max-mttsf")


def select_optimum(
    curve: Sequence[TradeoffPoint],
    *,
    objective: str = "max-mttsf",
    cost_ceiling_hop_bits_s: Optional[float] = None,
) -> OptimizationResult:
    """Pick the best point of an already-evaluated tradeoff curve.

    This is the selection half of :func:`optimize_tids`, split out so
    curves produced elsewhere — in particular by the batch engine's
    :func:`repro.engine.batch.run_tids_sweep` — share the exact same
    objective and feasibility semantics as the serial path.
    """
    _validate_objective(objective, cost_ceiling_hop_bits_s)

    candidates = list(curve)
    if cost_ceiling_hop_bits_s is not None:
        candidates = [
            p for p in curve if p.ctotal_hop_bits_s <= cost_ceiling_hop_bits_s
        ]

    best: Optional[TradeoffPoint] = None
    if candidates:
        if objective == "max-mttsf":
            best = max(candidates, key=lambda p: p.mttsf_s)
        else:
            best = min(candidates, key=lambda p: p.ctotal_hop_bits_s)

    return OptimizationResult(
        objective=objective,
        best=best,
        curve=tuple(curve),
        cost_ceiling_hop_bits_s=cost_ceiling_hop_bits_s,
    )


def optimize_tids(
    params: GCSParameters,
    tids_grid_s: Sequence[float],
    *,
    objective: str = "max-mttsf",
    cost_ceiling_hop_bits_s: Optional[float] = None,
    network: Optional[NetworkModel] = None,
    method: str = "fast",
    workers: Union[int, str, None] = None,
) -> OptimizationResult:
    """Pick the best ``TIDS`` on a grid.

    Objectives:

    * ``"max-mttsf"`` — maximise MTTSF (optionally subject to
      ``cost_ceiling_hop_bits_s``, the paper's "maximise MTTSF while
      satisfying imposed performance requirements");
    * ``"min-ctotal"`` — minimise Ĉtotal (Figure 3/5 reading).

    ``workers`` follows :func:`tradeoff_curve` — an int fans grid
    points over a process pool, ``"vector"`` solves them in one
    structure-sharing batched sweep.
    """
    # Validate before evaluating so bad objectives fail fast.
    _validate_objective(objective, cost_ceiling_hop_bits_s)

    curve = tradeoff_curve(
        params, tids_grid_s, network=network, method=method, workers=workers
    )
    return select_optimum(
        curve,
        objective=objective,
        cost_ceiling_hop_bits_s=cost_ceiling_hop_bits_s,
    )
