"""The paper's Figure 1 SPN, built on :mod:`repro.spn`.

Places: ``Tm`` (trusted members, initially ``N``), ``UCm`` (compromised
undetected), ``DCm`` (compromised/accused detected, pending eviction),
``GF`` (data-leak failure flag), and — in the coupled variant — ``NG``
(number of groups).

Transitions and rates come from :class:`repro.core.rates.GCSRates`.
Every transition carries the enabling guard that disables it once C1 or
C2 holds, which makes failure markings absorbing exactly as the paper
describes ("we associate every transition in the SPN model with an
enabling function that returns false when either C1 or C2 is met").

The default build *decouples* group dynamics (DESIGN.md §4.4): the
security chain stays acyclic (fast exact solver) and costs are weighted
by the stationary ``NG`` distribution. ``coupled_groups=True`` embeds
``NG`` in the marking with ``T_PAR``/``T_MER`` transitions — the CTMC
becomes cyclic and is solved by sparse LU; use it for small ``N`` (the
validation benchmark does).
"""

from __future__ import annotations

from typing import Optional

from ..errors import ParameterError
from ..manet.network import NetworkModel
from ..params import GCSParameters
from ..spn.marking import MarkingView
from ..spn.petri import StochasticPetriNet
from .failure import security_failure_condition
from .rates import GCSRates

__all__ = ["build_gcs_spn"]


def _not_failed(view: MarkingView) -> bool:
    return not security_failure_condition(view["Tm"], view["UCm"], view["GF"])


def build_gcs_spn(
    params: GCSParameters,
    network: NetworkModel,
    *,
    rates: Optional[GCSRates] = None,
    coupled_groups: bool = False,
    expected_groups: float = 1.0,
) -> StochasticPetriNet:
    """Construct the Figure 1 SPN for one scenario.

    Parameters
    ----------
    params, network:
        Scenario description.
    rates:
        Pre-built rate bundle (defaults to
        :meth:`GCSRates.from_scenario`).
    coupled_groups:
        Embed the group-count place ``NG`` with partition/merge
        transitions. Partition halves per-group sizes inside the rate
        functions via a live ``1/ng`` scale; merge restores them.
    expected_groups:
        Decoupled-mode scale ``E[NG]`` (ignored when coupled).
    """
    if coupled_groups and params.groups.max_groups < 1:
        raise ParameterError("max_groups must be >= 1 for the coupled model")
    rates = rates or GCSRates.from_scenario(
        params, network, expected_groups=1.0 if coupled_groups else expected_groups
    )

    net = StochasticPetriNet("gcs_ids")
    net.add_place("Tm", tokens=params.num_nodes)
    net.add_place("UCm")
    net.add_place("DCm")
    net.add_place("GF")
    if coupled_groups:
        net.add_place("NG", tokens=1)

    def scale_of(view: MarkingView) -> Optional[float]:
        if not coupled_groups:
            return None  # GCSRates falls back to its configured scale
        return 1.0 / max(view["NG"], 1)

    # -- T_CP: a trusted member becomes compromised ----------------------
    net.add_transition(
        "T_CP",
        inputs={"Tm": 1},
        outputs={"UCm": 1},
        rate=lambda m: rates.rate_compromise(m["Tm"], m["UCm"]),
        guard=_not_failed,
    )

    # -- T_DRQ: data leak to a compromised undetected member (C1) --------
    net.add_transition(
        "T_DRQ",
        inputs={"UCm": 1},
        outputs={"GF": 1},
        rate=lambda m: rates.rate_data_leak(m["UCm"]),
        guard=_not_failed,
    )

    # -- T_IDS: voting IDS detects a compromised member ------------------
    net.add_transition(
        "T_IDS",
        inputs={"UCm": 1},
        outputs={"DCm": 1},
        rate=lambda m: rates.rate_detection(
            m["Tm"], m["UCm"], group_scale=scale_of(m)
        ),
        guard=_not_failed,
    )

    # -- T_FA: voting IDS falsely accuses a trusted member ---------------
    net.add_transition(
        "T_FA",
        inputs={"Tm": 1},
        outputs={"DCm": 1},
        rate=lambda m: rates.rate_false_accusation(
            m["Tm"], m["UCm"], group_scale=scale_of(m)
        ),
        guard=_not_failed,
    )

    # -- T_RK: eviction rekey completes, detected member leaves ----------
    net.add_transition(
        "T_RK",
        inputs={"DCm": 1},
        rate=lambda m: rates.rate_rekey(
            m["Tm"], m["UCm"], m["DCm"], group_scale=scale_of(m)
        ),
        guard=_not_failed,
    )

    if coupled_groups:
        max_groups = params.groups.max_groups
        partition_rate = network.partition_rate_hz
        merge_rate = network.merge_rate_hz

        # -- T_PAR: one group splits (NG += 1) ----------------------------
        # Requires each resulting group to retain at least 2 live members.
        def partition_guard(m: MarkingView) -> bool:
            if not _not_failed(m):
                return False
            live = m["Tm"] + m["UCm"] + m["DCm"]
            return m["NG"] < max_groups and live / (m["NG"] + 1) >= 2.0

        net.add_transition(
            "T_PAR",
            inputs={"NG": 1},
            outputs={"NG": 2},
            rate=lambda m: partition_rate * m["NG"],
            guard=partition_guard,
        )

        # -- T_MER: two groups merge (NG -= 1) -----------------------------
        net.add_transition(
            "T_MER",
            inputs={"NG": 2},
            outputs={"NG": 1},
            rate=lambda m: merge_rate * (m["NG"] - 1),
            guard=_not_failed,
        )

    return net
