"""Security failure conditions C1 and C2 (paper Section 3).

* **C1 (data leak / loss of integrity)** — a compromised-but-undetected
  member obtained group data: modelled by a token in place ``GF``.
* **C2 (Byzantine takeover / loss of availability)** — more than 1/3 of
  the live members are compromised-undetected:
  ``#UCm / (#Tm + #UCm) > 1/3``, evaluated in exact integer arithmetic
  as ``3·#UCm > #Tm + #UCm``, i.e. ``2·#UCm > #Tm``.
* **Depletion (modelling corner, DESIGN.md §4.5)** — every member has
  been evicted before C1/C2 fired. Classified as an availability
  failure alongside C2 but reported separately.
"""

from __future__ import annotations

from enum import Enum

from ..spn.marking import MarkingView

__all__ = [
    "FailureClass",
    "c1_data_leak",
    "c2_byzantine",
    "depleted",
    "security_failure_condition",
    "is_absorbed",
]


class FailureClass(str, Enum):
    """Absorbing-state classification of the GCS model."""

    C1_DATA_LEAK = "c1_data_leak"
    C2_BYZANTINE = "c2_byzantine"
    DEPLETION = "depletion"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def c1_data_leak(t: int, u: int, gf: int) -> bool:
    """C1: data leaked to a compromised undetected member."""
    return gf > 0


def c2_byzantine(t: int, u: int, gf: int) -> bool:
    """C2: ``u/(t+u) > 1/3`` in exact integer form (requires u > 0)."""
    return gf == 0 and u > 0 and 2 * u > t


def depleted(t: int, u: int, gf: int) -> bool:
    """All members evicted without a C1/C2 event (live count zero)."""
    return gf == 0 and t + u == 0


def security_failure_condition(t: int, u: int, gf: int) -> bool:
    """True when the group is in a security failure state (C1 or C2).

    This is the predicate every SPN transition's enabling guard negates:
    once it holds, the marking is absorbing (paper Section 4).
    """
    return c1_data_leak(t, u, gf) or c2_byzantine(t, u, gf)


def is_absorbed(view: MarkingView) -> bool:
    """Marking-level variant of :func:`security_failure_condition`."""
    return security_failure_condition(view["Tm"], view["UCm"], view["GF"])
