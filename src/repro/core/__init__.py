"""The paper's core contribution: the GCS security/performance model.

* :mod:`repro.core.failure` — the C1/C2 security failure conditions;
* :mod:`repro.core.rates` — the marking-dependent transition rates of
  Figure 1 (attacker, detection, voting, rekey) in one shared object;
* :mod:`repro.core.model` — the faithful Figure 1 SPN (with optional
  coupled group dynamics);
* :mod:`repro.core.fastpath` — vectorised direct construction of the
  same CTMC for large ``N`` (verified equal to the SPN path by test);
* :mod:`repro.core.metrics` — the ``evaluate()`` pipeline producing
  MTTSF, Ĉtotal, failure-mode probabilities and cost breakdowns;
* :mod:`repro.core.optimizer` — optimal-``TIDS`` search and the
  security↔performance tradeoff API;
* :mod:`repro.core.scenario` — a scenario facade that caches the
  network/mobility stage across parameter sweeps.
"""

from .failure import FailureClass, is_absorbed, security_failure_condition
from .fastpath import (
    LatticeStructure,
    build_lattice_chain,
    fill_transition_rates,
    lattice_structure,
)
from .metrics import (
    GCSEvaluation,
    evaluate,
    evaluate_batch,
    evaluate_batch_outcomes,
    evaluate_survivability,
    evaluate_survivability_batch,
    evaluate_survivability_batch_outcomes,
)
from .model import build_gcs_spn
from .optimizer import (
    OptimizationResult,
    TradeoffPoint,
    optimize_tids,
    select_optimum,
    tradeoff_curve,
)
from .rates import GCSRates
from .results import GCSResult, SurvivabilityResult
from .scenario import Scenario

__all__ = [
    "FailureClass",
    "security_failure_condition",
    "is_absorbed",
    "GCSRates",
    "build_gcs_spn",
    "build_lattice_chain",
    "LatticeStructure",
    "lattice_structure",
    "fill_transition_rates",
    "GCSEvaluation",
    "evaluate",
    "evaluate_batch",
    "evaluate_batch_outcomes",
    "evaluate_survivability",
    "evaluate_survivability_batch",
    "evaluate_survivability_batch_outcomes",
    "GCSResult",
    "SurvivabilityResult",
    "OptimizationResult",
    "TradeoffPoint",
    "optimize_tids",
    "select_optimum",
    "tradeoff_curve",
    "Scenario",
]
