"""Cross-worker sharing of :class:`~repro.core.fastpath.LatticeStructure`.

A ``LatticeStructure`` is a pure function of ``N`` but costs an O(N³)
enumeration to build, and PR 3/PR 4 left it rebuilt from scratch in
every pool worker (``--jobs N`` and the ``--jobs vector:N`` hybrid
spawn fresh processes whose structure caches start empty). This module
closes that follow-up: the structure's immutable arrays are packed once
into a :mod:`multiprocessing.shared_memory` segment by the parent, and
every worker *attaches* read-only views instead of re-enumerating — one
physical copy of the lattice skeleton per machine, near-zero worker
cold-start.

Two layers, used in order:

* **Shared memory** — the parent packs each structure's arrays into one
  segment (:func:`export_structures`); pool initializers call
  :func:`attach_structures` and seed the process-local cache with
  zero-copy views (:func:`repro.core.fastpath.seed_structure_cache`).
  The parent closes *and unlinks* the segment once the pool is done.
* **On-disk ``.npz`` cache** — the cross-platform / fork-unsafe
  fallback (and a cold-start cache in its own right): structures are
  saved under ``<dir>/N<nodes>.v<schema>.npz`` (atomic tmp + rename)
  and loaded instead of rebuilt (:func:`cached_structure`). Workers
  fall back to it when the shared-memory attach fails; the engine
  defaults the directory to ``<cache_dir>/structures`` and the CLI
  exposes it as ``--structure-cache``.

Rebuilding locally is always the last resort, so sharing can never make
a run fail — every failure path degrades to PR 4 behaviour.

``REPRO_STRUCTURE_SHARE=0`` disables both layers (A/B benchmarking).
"""

from __future__ import annotations

import logging
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

from ..ctmc.acyclic import BatchDagStructure, DagStructure
from ..errors import ParameterError
from ..obs import metrics, span
from .fastpath import (
    _KINDS,
    LatticeStructure,
    lattice_structure,
    peek_structure_cache,
    seed_structure_cache,
)

log = logging.getLogger(__name__)

__all__ = [
    "STRUCT_SCHEMA_VERSION",
    "structure_share_enabled",
    "structure_to_arrays",
    "structure_from_arrays",
    "save_structure",
    "load_structure",
    "structure_cache_path",
    "cached_structure",
    "StructureShareSpec",
    "StructureShareHandle",
    "export_structures",
    "attach_structures",
    "pool_initializer",
]

#: Bump whenever the array layout of :class:`LatticeStructure` /
#: :class:`BatchDagStructure` changes; stale cache files and foreign
#: segments then simply miss instead of deserialising garbage.
STRUCT_SCHEMA_VERSION = 1

_SHM_ALIGN = 16


def structure_share_enabled() -> bool:
    """Whether cross-worker structure sharing is enabled (default: yes).

    ``REPRO_STRUCTURE_SHARE=0`` turns both the shared-memory and the
    disk layer off — every worker rebuilds, the PR 4 baseline — for
    A/B benchmarking.
    """
    return os.environ.get("REPRO_STRUCTURE_SHARE", "1").strip().lower() not in (
        "0",
        "off",
        "false",
    )


# ---------------------------------------------------------------------------
# Array (de)serialisation
# ---------------------------------------------------------------------------

def structure_to_arrays(structure: LatticeStructure) -> dict[str, np.ndarray]:
    """Flatten a structure into named arrays (one canonical layout).

    The inverse is :func:`structure_from_arrays`; both the shared-memory
    pack and the ``.npz`` cache serialise exactly this mapping plus the
    scalar header (``meta``). ``level_states`` is not stored — it is
    reconstructed as views of ``dag_lvl_rows`` sliced at
    ``dag_lvl_row_bounds`` (the arrays are equal by construction).
    """
    dag = structure.dag
    arrays: dict[str, np.ndarray] = {
        "meta": np.array(
            [
                STRUCT_SCHEMA_VERSION,
                structure.num_nodes,
                structure.initial_state,
                structure.c1_state,
                dag.width,
            ],
            dtype=np.int64,
        ),
        "t": structure.t,
        "u": structure.u,
        "d": structure.d,
        "state_id": structure.state_id,
        "c2_states": structure.c2_states,
        "depletion_states": structure.depletion_states,
        "indptr": structure.indptr,
        "indices": structure.indices,
        "dag_slot_rows": dag.slot_rows,
        "dag_levels": dag.structure.levels,
        "dag_ell_cols": dag.ell_cols,
        "dag_ell_slots": dag.ell_slots,
        "dag_ell_pad": dag.ell_pad,
        "dag_lvl_rows": dag.lvl_rows,
        "dag_lvl_row_bounds": dag.lvl_row_bounds,
        "dag_lvl_ell_slots": dag.lvl_ell_slots,
        "dag_lvl_ell_cols": dag.lvl_ell_cols,
    }
    for kind in _KINDS:
        arrays[f"mask_{kind}"] = structure.masks[kind]
        arrays[f"src_{kind}"] = structure.src[kind]
        arrays[f"dst_{kind}"] = structure.dst[kind]
        arrays[f"slot_{kind}"] = structure.slots[kind]
    return arrays


def structure_from_arrays(
    arrays: Mapping[str, np.ndarray]
) -> LatticeStructure:
    """Rebuild a (frozen) structure from :func:`structure_to_arrays` output.

    Every array is frozen (``writeable=False``) — shared-memory views
    and cache loads alike must be immutable, exactly like the arrays a
    locally built structure hands out.
    """
    meta = np.asarray(arrays["meta"], dtype=np.int64)
    if meta.shape != (5,) or int(meta[0]) != STRUCT_SCHEMA_VERSION:
        raise ParameterError(
            f"structure payload has schema {meta[0] if meta.size else '?'}, "
            f"expected {STRUCT_SCHEMA_VERSION}"
        )
    _, num_nodes, initial_state, c1_state, width = (int(v) for v in meta)

    def arr(name: str) -> np.ndarray:
        a = arrays[name]
        a.setflags(write=False)
        return a

    lvl_rows = arr("dag_lvl_rows")
    bounds = arr("dag_lvl_row_bounds")
    level_states = [
        lvl_rows[bounds[L] : bounds[L + 1]] for L in range(bounds.size - 1)
    ]
    dag = BatchDagStructure(
        indptr=arr("indptr"),
        indices=arr("indices"),
        slot_rows=arr("dag_slot_rows"),
        structure=DagStructure(levels=arr("dag_levels"), level_states=level_states),
        ell_cols=arr("dag_ell_cols"),
        ell_slots=arr("dag_ell_slots"),
        ell_pad=arr("dag_ell_pad"),
        width=width,
        lvl_rows=lvl_rows,
        lvl_row_bounds=bounds,
        lvl_ell_slots=arr("dag_lvl_ell_slots"),
        lvl_ell_cols=arr("dag_lvl_ell_cols"),
    )
    return LatticeStructure(
        num_nodes=num_nodes,
        t=arr("t"),
        u=arr("u"),
        d=arr("d"),
        state_id=arr("state_id"),
        initial_state=initial_state,
        c1_state=c1_state,
        c2_states=arr("c2_states"),
        depletion_states=arr("depletion_states"),
        masks={kind: arr(f"mask_{kind}") for kind in _KINDS},
        src={kind: arr(f"src_{kind}") for kind in _KINDS},
        dst={kind: arr(f"dst_{kind}") for kind in _KINDS},
        slots={kind: arr(f"slot_{kind}") for kind in _KINDS},
        indptr=arr("indptr"),
        indices=arr("indices"),
        dag=dag,
    )


# ---------------------------------------------------------------------------
# On-disk .npz cache (fork-unsafe / cross-platform fallback)
# ---------------------------------------------------------------------------

def structure_cache_path(num_nodes: int, cache_dir: "str | Path") -> Path:
    """Cache file for ``num_nodes`` under ``cache_dir`` (schema-versioned)."""
    return Path(cache_dir) / f"N{int(num_nodes)}.v{STRUCT_SCHEMA_VERSION}.npz"


def save_structure(path: "str | Path", structure: LatticeStructure) -> Path:
    """Write a structure to ``path`` atomically (tmp + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, **structure_to_arrays(structure))
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def load_structure(path: "str | Path") -> LatticeStructure:
    """Load a structure saved by :func:`save_structure`."""
    with span("structshare.npz_load", path=str(path)):
        with np.load(path) as payload:
            arrays = {name: payload[name] for name in payload.files}
        structure = structure_from_arrays(arrays)
    metrics().counter("structshare.npz_loads").add()
    return structure


def cached_structure(
    num_nodes: int, cache_dir: "str | Path | None"
) -> LatticeStructure:
    """Load-or-build-and-save through the on-disk cache.

    A corrupt or stale-schema file is treated as a miss and rewritten;
    with ``cache_dir=None`` this is just :func:`lattice_structure`.
    The result is also seeded into the process-wide cache, so repeated
    lookups stay O(1).
    """
    if cache_dir is None:
        return lattice_structure(num_nodes)
    path = structure_cache_path(num_nodes, cache_dir)
    cached = peek_structure_cache(num_nodes)
    if cached is not None:
        if not path.exists():
            # Built before the cache dir was configured: persist it so
            # pool workers (and later cold processes) can load it.
            try:
                save_structure(path, cached)
            except OSError:
                pass
        return cached
    if path.exists():
        try:
            structure = load_structure(path)
        except Exception:  # noqa: BLE001 — any corrupt payload is a miss
            structure = None
        if structure is not None and structure.num_nodes == int(num_nodes):
            seed_structure_cache(structure)
            return structure
    structure = lattice_structure(num_nodes)
    try:
        save_structure(path, structure)
    except OSError:
        pass  # read-only cache dir: the build still served the caller
    return structure


# ---------------------------------------------------------------------------
# Shared-memory export / attach
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StructureShareSpec:
    """Picklable recipe a pool worker uses to acquire shared structures.

    ``manifest`` holds, per structure, the entries
    ``(name, dtype_str, shape, offset)`` describing where each array
    lives in the segment; ``shm_name=None`` means shared memory was
    unavailable and workers should go straight to the ``.npz`` layer
    (or rebuild).
    """

    num_nodes: tuple[int, ...]
    shm_name: Optional[str] = None
    manifest: tuple[tuple[tuple[str, str, tuple[int, ...], int], ...], ...] = ()
    npz_dir: Optional[str] = None


class StructureShareHandle:
    """Parent-side owner of an exported segment (close + unlink once)."""

    def __init__(self, spec: StructureShareSpec, shm=None) -> None:
        self.spec = spec
        self._shm = shm

    def close(self) -> None:
        """Release and unlink the segment (idempotent)."""
        shm, self._shm = self._shm, None
        if shm is not None:
            try:
                shm.close()
                shm.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass

    def __enter__(self) -> "StructureShareHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _pack_into_shm(structures: Sequence[LatticeStructure]):
    """Create one segment holding every structure; return (shm, manifest)."""
    from multiprocessing import shared_memory

    plans = []
    offset = 0
    for structure in structures:
        entries = []
        for name, array in structure_to_arrays(structure).items():
            array = np.ascontiguousarray(array)
            entries.append((name, array.dtype.str, array.shape, offset, array))
            offset += array.nbytes
            offset += (-offset) % _SHM_ALIGN
        plans.append(entries)

    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    try:
        manifest = []
        for entries in plans:
            described = []
            for name, dtype, shape, off, array in entries:
                view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=off)
                view[...] = array
                described.append((name, dtype, tuple(shape), off))
            manifest.append(tuple(described))
        del view  # release the exported buffer before any close()
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    return shm, tuple(manifest)


def _attach_shm(name: str):
    """Attach to a named segment without disturbing its tracking.

    On 3.13+ ``track=False`` skips the resource tracker entirely. On
    earlier Pythons the attach re-registers the name — harmless here,
    because pool workers share the exporting parent's tracker process
    (its name cache is a set, so the duplicate registration is a
    no-op and the parent's explicit ``unlink()`` still unregisters the
    one entry). Do *not* "fix" this with ``resource_tracker.unregister``
    after attaching: with a shared tracker that cancels the parent's
    registration and corrupts unlink-time accounting.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        return shared_memory.SharedMemory(name=name, create=False)


#: Segments this process has attached: the buffers back live structure
#: arrays, so the SharedMemory objects must stay referenced for the
#: worker's lifetime (the OS reclaims the mapping when it exits).
_ATTACHED_SEGMENTS: list = []


def export_structures(
    num_nodes: Iterable[int],
    *,
    npz_dir: "str | Path | None" = None,
    use_shm: bool = True,
) -> Optional[StructureShareHandle]:
    """Build (or disk-load) structures and export them for pool workers.

    Returns ``None`` when there is nothing to share (no sizes, sharing
    disabled via ``REPRO_STRUCTURE_SHARE=0``, or neither layer is
    available) — callers then simply run workers without an
    initializer, i.e. the PR 4 rebuild-per-worker behaviour.
    """
    sizes = tuple(sorted({int(n) for n in num_nodes}))
    if not sizes or not structure_share_enabled():
        return None
    with span("structshare.export", sizes=list(sizes), shm=use_shm):
        structures = [cached_structure(n, npz_dir) for n in sizes]
        shm = None
        manifest: tuple = ()
        if use_shm:
            try:
                shm, manifest = _pack_into_shm(structures)
            except Exception:  # noqa: BLE001 — no shm on this platform/sandbox
                shm, manifest = None, ()
                log.debug("shared-memory export unavailable; npz layer only")
        if shm is None and npz_dir is None:
            return None
        spec = StructureShareSpec(
            num_nodes=sizes,
            shm_name=shm.name if shm is not None else None,
            manifest=manifest,
            npz_dir=str(npz_dir) if npz_dir is not None else None,
        )
    metrics().counter("structshare.exports").add()
    return StructureShareHandle(spec, shm)


def attach_structures(spec: StructureShareSpec) -> int:
    """Acquire the shared structures in this process; returns how many.

    Tries the shared-memory segment first (zero-copy views), then the
    ``.npz`` cache, and silently gives up per structure otherwise — the
    worker will rebuild lazily, which is always correct.
    """
    attached = 0
    views_by_index: dict[int, dict[str, np.ndarray]] = {}
    with span("structshare.attach", sizes=list(spec.num_nodes)) as sp:
        if spec.shm_name is not None:
            try:
                shm = _attach_shm(spec.shm_name)
            except Exception:  # noqa: BLE001 — segment gone / platform quirk
                shm = None
            if shm is not None:
                _ATTACHED_SEGMENTS.append(shm)
                for i, entries in enumerate(spec.manifest):
                    views_by_index[i] = {
                        name: np.ndarray(
                            shape, dtype=dtype, buffer=shm.buf, offset=offset
                        )
                        for name, dtype, shape, offset in entries
                    }
        for i, n in enumerate(spec.num_nodes):
            structure = None
            if i in views_by_index:
                try:
                    structure = structure_from_arrays(views_by_index[i])
                except Exception:  # noqa: BLE001 — foreign/corrupt payload
                    structure = None
            if structure is None and spec.npz_dir is not None:
                try:
                    structure = load_structure(
                        structure_cache_path(n, spec.npz_dir)
                    )
                except Exception:  # noqa: BLE001 — missing/corrupt cache file
                    structure = None
            if structure is not None and structure.num_nodes == n:
                seed_structure_cache(structure)
                attached += 1
        sp.set(attached=attached)
    metrics().counter("structshare.attaches").add(attached)
    if attached < len(spec.num_nodes):
        log.debug(
            "attached %d of %d shared structures (rest rebuild lazily)",
            attached,
            len(spec.num_nodes),
        )
    return attached


def pool_initializer(spec: StructureShareSpec) -> None:
    """Worker initializer: best-effort attach, never fails the worker."""
    try:
        attach_structures(spec)
    except Exception:  # noqa: BLE001 — sharing must never break evaluation
        pass
