"""Reachability-graph generation.

Breadth-first exploration from the initial marking, evaluating
marking-dependent rates at each source marking. The result is a
:class:`ReachabilityGraph`: the state list (markings), an index map, and
the labelled rate edges — everything needed to compile a CTMC
(:mod:`repro.spn.ctmc_builder`) or export DOT.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Mapping, Optional

from ..errors import StateSpaceError
from .marking import Marking
from .petri import StochasticPetriNet

__all__ = ["ReachabilityGraph", "explore"]


@dataclass(frozen=True)
class ReachabilityGraph:
    """The reachable state space of an SPN.

    Attributes
    ----------
    net:
        The net explored.
    markings:
        Reachable markings; index in this list is the CTMC state index.
    index:
        Inverse map ``marking -> state index``.
    edges:
        ``(src_index, dst_index, rate, transition_name)`` tuples; one per
        enabled (transition, source-marking) pair.
    dead_states:
        Indices of markings with no enabled transition (these become the
        absorbing states of the CTMC).
    """

    net: StochasticPetriNet
    markings: list[Marking]
    index: Mapping[Marking, int]
    edges: list[tuple[int, int, float, str]]
    dead_states: list[int]

    @property
    def num_states(self) -> int:
        return len(self.markings)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def states_where(self, predicate) -> list[int]:
        """Indices of markings satisfying ``predicate(view) -> bool``."""
        return [
            i
            for i, m in enumerate(self.markings)
            if predicate(self.net.view(m))
        ]

    def transition_flow(self, transition_name: str) -> list[tuple[int, int, float]]:
        """All edges contributed by one transition (for debugging/tests)."""
        return [
            (src, dst, rate)
            for src, dst, rate, name in self.edges
            if name == transition_name
        ]


def explore(
    net: StochasticPetriNet,
    initial: Optional[Marking] = None,
    *,
    max_states: int = 2_000_000,
) -> ReachabilityGraph:
    """Generate the reachability graph of ``net`` from ``initial``.

    Parameters
    ----------
    net:
        The net to explore.
    initial:
        Starting marking (defaults to the net's initial marking).
    max_states:
        Hard bound on the number of states; exceeded ⇒
        :class:`~repro.errors.StateSpaceError`. The default comfortably
        covers the N=100 GCS model (~1.8e5 states) while catching
        accidentally unbounded nets.

    Notes
    -----
    Rates are evaluated once per (source marking, transition). Parallel
    arcs from the same source to the same destination via *different*
    transitions are kept as separate edges (the CTMC builder sums them);
    this preserves per-transition attribution for reward/flow queries.
    """
    if initial is None:
        initial = net.initial_marking
    else:
        # Validate length/compatibility early.
        net.view(initial)

    index: dict[Marking, int] = {initial: 0}
    markings: list[Marking] = [initial]
    edges: list[tuple[int, int, float, str]] = []
    dead: list[int] = []

    queue: deque[int] = deque([0])
    while queue:
        src = queue.popleft()
        marking = markings[src]
        enabled = net.enabled_transitions(marking)
        if not enabled:
            dead.append(src)
            continue
        for transition, rate in enabled:
            nxt = net.fire(marking, transition)
            dst = index.get(nxt)
            if dst is None:
                dst = len(markings)
                if dst >= max_states:
                    raise StateSpaceError(
                        f"reachability exceeded max_states={max_states} "
                        f"(net {net.name!r}); raise the bound or check the model"
                    )
                index[nxt] = dst
                markings.append(nxt)
                queue.append(dst)
            edges.append((src, dst, rate, transition.name))

    return ReachabilityGraph(
        net=net, markings=markings, index=index, edges=edges, dead_states=dead
    )
