"""Compile a reachability graph into a CTMC."""

from __future__ import annotations

from typing import Optional

from ..ctmc.chain import CTMC
from .marking import Marking
from .petri import StochasticPetriNet
from .reachability import ReachabilityGraph, explore

__all__ = ["build_ctmc"]


def build_ctmc(
    source: "StochasticPetriNet | ReachabilityGraph",
    initial: Optional[Marking] = None,
    *,
    max_states: int = 2_000_000,
) -> tuple[CTMC, ReachabilityGraph]:
    """Build the CTMC underlying an SPN (or a pre-built graph).

    Edges from parallel transitions between the same pair of markings
    are summed (standard race semantics for exponential transitions).
    Marking tuples are attached as CTMC state labels.

    Returns the chain together with the reachability graph so callers
    can map markings to state indices for rewards and absorbing classes.
    """
    if isinstance(source, ReachabilityGraph):
        graph = source
    else:
        graph = explore(source, initial, max_states=max_states)

    chain = CTMC.from_transitions(
        graph.num_states,
        ((src, dst, rate) for src, dst, rate, _ in graph.edges),
        labels=graph.markings,
    )
    return chain, graph
