"""Graphviz DOT export of nets and reachability graphs.

Used for documentation (the paper's Figure 1 regenerated from code) and
debugging. The output is plain DOT text; no Graphviz binary is required
at runtime.
"""

from __future__ import annotations

from .petri import StochasticPetriNet
from .reachability import ReachabilityGraph

__all__ = ["net_to_dot", "reachability_to_dot"]


def _quote(s: str) -> str:
    return '"' + s.replace('"', r"\"") + '"'


def net_to_dot(net: StochasticPetriNet) -> str:
    """Render the net structure (places as circles, transitions as bars)."""
    lines = [f"digraph {_quote(net.name)} {{", "  rankdir=LR;"]
    for place in net.places:
        label = place.name if place.initial_tokens == 0 else f"{place.name}\\n({place.initial_tokens})"
        lines.append(f"  {_quote('p_' + place.name)} [shape=circle, label={_quote(label)}];")
    for t in net.transitions:
        lines.append(
            f"  {_quote('t_' + t.name)} [shape=box, style=filled, fillcolor=gray85, "
            f"height=0.15, label={_quote(t.name)}];"
        )
        for place, mult in t.inputs.items():
            attr = f" [label={_quote(str(mult))}]" if mult > 1 else ""
            lines.append(f"  {_quote('p_' + place)} -> {_quote('t_' + t.name)}{attr};")
        for place, mult in t.outputs.items():
            attr = f" [label={_quote(str(mult))}]" if mult > 1 else ""
            lines.append(f"  {_quote('t_' + t.name)} -> {_quote('p_' + place)}{attr};")
    lines.append("}")
    return "\n".join(lines)


def reachability_to_dot(graph: ReachabilityGraph, *, max_states: int = 500) -> str:
    """Render a (small) reachability graph with rate-labelled edges.

    Refuses graphs above ``max_states`` — DOT rendering of 1e5-state
    graphs helps nobody.
    """
    if graph.num_states > max_states:
        raise ValueError(
            f"reachability graph has {graph.num_states} states; "
            f"raise max_states (> {max_states}) explicitly if you really want DOT"
        )
    net = graph.net
    lines = [f"digraph {_quote(net.name + '_rg')} {{", "  rankdir=LR;"]
    dead = set(graph.dead_states)
    for i, marking in enumerate(graph.markings):
        label = ",".join(
            f"{name}={count}"
            for name, count in net.view(marking).as_dict().items()
            if count
        ) or "empty"
        shape = "doublecircle" if i in dead else "ellipse"
        lines.append(f"  s{i} [shape={shape}, label={_quote(label)}];")
    for src, dst, rate, name in graph.edges:
        lines.append(f"  s{src} -> s{dst} [label={_quote(f'{name}:{rate:.3g}')}];")
    lines.append("}")
    return "\n".join(lines)
