"""Markings: token assignments to places.

Internally a marking is a plain ``tuple[int, ...]`` ordered by the net's
place registration order — hashable, compact, and fast to use as a dict
key during reachability exploration. :class:`MarkingView` is the
read-only, name-addressable wrapper handed to user rate/guard/reward
functions so model code reads like the paper::

    rate=lambda m: p1 * lambda_q * m["UCm"]
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence, Tuple

from ..errors import ModelError

__all__ = ["Marking", "MarkingView"]

Marking = Tuple[int, ...]
"""Type alias: a marking is a tuple of token counts in place order."""


class MarkingView(Mapping[str, int]):
    """Read-only name-addressable view of a marking.

    Supports ``view["Tm"]``, ``"Tm" in view``, iteration over place
    names, and ``.total()``. Instances are cheap façades created per
    rate/guard evaluation; they never copy the underlying tuple.
    """

    __slots__ = ("_index", "_counts")

    def __init__(self, place_index: Mapping[str, int], counts: Marking) -> None:
        self._index = place_index
        self._counts = counts

    def __getitem__(self, place: str) -> int:
        try:
            return self._counts[self._index[place]]
        except KeyError:
            raise ModelError(f"unknown place {place!r}") from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._index)

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, place: object) -> bool:
        return place in self._index

    def total(self) -> int:
        """Total token count across all places."""
        return sum(self._counts)

    def counts(self) -> Marking:
        """The underlying tuple (place-registration order)."""
        return self._counts

    def as_dict(self) -> dict[str, int]:
        """Materialise as a plain dict (reporting/debugging)."""
        return {name: self._counts[i] for name, i in self._index.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"MarkingView({inner})"


def marking_from(place_order: Sequence[str], tokens: Mapping[str, int]) -> Marking:
    """Build a marking tuple from a name->count mapping.

    Raises :class:`~repro.errors.ModelError` on unknown names or
    negative counts; unmentioned places get zero tokens.
    """
    index = {name: i for i, name in enumerate(place_order)}
    counts = [0] * len(place_order)
    for name, value in tokens.items():
        if name not in index:
            raise ModelError(f"unknown place {name!r} in marking")
        if int(value) != value or value < 0:
            raise ModelError(f"token count for {name!r} must be a non-negative int, got {value!r}")
        counts[index[name]] = int(value)
    return tuple(counts)
