"""Stochastic Petri net (SPN) modelling engine.

A from-scratch replacement for the SPNP tool the paper's authors used:
places, timed transitions with marking-dependent rates and enabling
guards, reachability-graph generation, compilation to a
:class:`~repro.ctmc.chain.CTMC`, reward structures over markings, and
Graphviz export.

The formalism implemented is exactly what the paper's Figure 1 model
needs (and what SPNP's CTMC solution path provides): exponentially timed
transitions whose firing rate may depend on the current marking
(``mark(...)`` expressions), guards that enable/disable transitions per
marking, and mean-time-to-absorption / accumulated-reward measures.
Immediate (zero-delay) transitions are intentionally not implemented —
the GCS model has none, and their vanishing-marking elimination would be
dead code.
"""

from .analysis import SPNAnalysis, analyze_spn
from .ctmc_builder import build_ctmc
from .dot_export import net_to_dot, reachability_to_dot
from .marking import Marking, MarkingView
from .petri import Place, StochasticPetriNet, Transition
from .reachability import ReachabilityGraph, explore
from .rewards import indicator_reward, reward_vector

__all__ = [
    "Place",
    "Transition",
    "StochasticPetriNet",
    "Marking",
    "MarkingView",
    "ReachabilityGraph",
    "explore",
    "build_ctmc",
    "reward_vector",
    "indicator_reward",
    "SPNAnalysis",
    "analyze_spn",
    "net_to_dot",
    "reachability_to_dot",
]
