"""High-level SPN analysis: build, explore, solve in one call.

:func:`analyze_spn` is what model code uses: it takes a net, reward
functions and absorbing-class predicates expressed over *markings*, and
returns an :class:`SPNAnalysis` bundling the reachability graph, the
CTMC and the absorbing solution with marking-level accessors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional


from ..ctmc.absorbing import AbsorbingSolution, analyze_absorbing
from ..ctmc.chain import CTMC
from ..errors import ModelError
from .ctmc_builder import build_ctmc
from .marking import Marking, MarkingView
from .petri import StochasticPetriNet
from .reachability import ReachabilityGraph
from .rewards import reward_vector

__all__ = ["SPNAnalysis", "analyze_spn"]

RewardFn = Callable[[MarkingView], float]
Predicate = Callable[[MarkingView], bool]


@dataclass(frozen=True)
class SPNAnalysis:
    """Bundle of everything produced by :func:`analyze_spn`."""

    graph: ReachabilityGraph
    chain: CTMC
    solution: AbsorbingSolution

    @property
    def mtta(self) -> float:
        """Mean time to absorption from the initial marking."""
        return self.solution.mtta

    def expected_reward(self, name: str) -> float:
        return self.solution.expected_reward(name)

    def lifetime_average(self, name: str) -> float:
        return self.solution.lifetime_average(name)

    def absorption_probability(self, name: str) -> float:
        return self.solution.absorption_probability(name)

    def tau_of(self, marking: Marking) -> float:
        """Expected time-to-absorption from a specific marking."""
        idx = self.graph.index.get(marking)
        if idx is None:
            raise ModelError(f"marking {marking!r} is not reachable")
        return float(self.solution.tau[idx])


def analyze_spn(
    net: StochasticPetriNet,
    *,
    initial: Optional[Marking] = None,
    rewards: Optional[Mapping[str, RewardFn]] = None,
    absorbing_classes: Optional[Mapping[str, Predicate]] = None,
    method: str = "auto",
    max_states: int = 2_000_000,
) -> SPNAnalysis:
    """Explore, compile and solve an absorbing SPN.

    Parameters
    ----------
    net, initial, max_states:
        Model and exploration bounds (see :func:`repro.spn.reachability.explore`).
    rewards:
        Named reward-rate functions over markings; each yields an
        expected-accumulated value and a lifetime average.
    absorbing_classes:
        Named predicates over markings classifying *dead* (absorbing)
        states — e.g. the paper's C1 vs C2 failure conditions. Dead
        states matching no predicate remain unclassified (their mass is
        still part of ``mtta``).
    method:
        Solver selection, forwarded to
        :func:`repro.ctmc.absorbing.analyze_absorbing`.
    """
    chain, graph = build_ctmc(net, initial, max_states=max_states)

    reward_vectors = {
        name: reward_vector(graph, fn) for name, fn in (rewards or {}).items()
    }

    classes: Optional[dict[str, list[int]]] = None
    if absorbing_classes:
        dead = set(graph.dead_states)
        classes = {}
        for name, predicate in absorbing_classes.items():
            members = [
                i for i in graph.dead_states
                if predicate(net.view(graph.markings[i]))
            ]
            classes[name] = members
        # Sanity: predicates must only classify dead states (they do by
        # construction here) and should not overlap ambiguously; overlaps
        # are allowed but typically indicate a modelling slip, so warn via
        # exception only on full duplication.
        del dead

    solution = analyze_absorbing(
        chain,
        initial=0,
        rewards=reward_vectors,
        absorbing_classes=classes,
        method=method,
    )
    return SPNAnalysis(graph=graph, chain=chain, solution=solution)
