"""Core SPN structures: places, timed transitions, the net.

The semantics follow standard Stochastic Petri nets with
marking-dependent rates (as in SPNP):

* a transition is **enabled** in marking ``M`` iff every input place
  holds at least the arc multiplicity, its guard (if any) returns true
  on ``M``, and its rate evaluated on ``M`` is strictly positive;
* firing consumes input tokens and produces output tokens;
* all transitions are exponentially timed with the marking-dependent
  rate; racing transitions compose into a CTMC over the reachability
  graph (:mod:`repro.spn.reachability`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence, Union

from ..errors import ModelError
from ..validation import require_non_negative_int
from .marking import Marking, MarkingView, marking_from

__all__ = ["Place", "Transition", "StochasticPetriNet"]

RateLike = Union[float, int, Callable[[MarkingView], float]]
Guard = Callable[[MarkingView], bool]


@dataclass(frozen=True)
class Place:
    """A place (token holder) in the net."""

    name: str
    initial_tokens: int = 0

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ModelError(f"place name must be a non-empty string, got {self.name!r}")
        require_non_negative_int(f"initial_tokens of {self.name!r}", self.initial_tokens)


@dataclass(frozen=True)
class Transition:
    """A timed transition.

    ``inputs`` / ``outputs`` map place names to arc multiplicities.
    ``rate`` is a positive constant or a callable evaluated on the
    source marking; a non-positive evaluated rate disables the
    transition in that marking (this is how the paper's models express
    state-dependent behaviour like ``mark(UCm) * D(md) * (1 - Pfn)``).
    ``guard`` may veto enabling per marking (the paper's absorbing
    conditions C1/C2 are guards returning ``False``).
    """

    name: str
    inputs: Mapping[str, int] = field(default_factory=dict)
    outputs: Mapping[str, int] = field(default_factory=dict)
    rate: RateLike = 1.0
    guard: Optional[Guard] = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ModelError(f"transition name must be a non-empty string, got {self.name!r}")
        for kind, arcs in (("input", self.inputs), ("output", self.outputs)):
            for place, mult in arcs.items():
                if int(mult) != mult or mult < 1:
                    raise ModelError(
                        f"{kind} arc {self.name!r}->{place!r} multiplicity must be a positive int, got {mult!r}"
                    )
        if not callable(self.rate):
            rate = float(self.rate)  # type: ignore[arg-type]
            if not rate > 0.0:
                raise ModelError(
                    f"constant rate of transition {self.name!r} must be > 0, got {rate!r}"
                )

    def evaluate_rate(self, view: MarkingView) -> float:
        """Rate in the given marking (0 or negative ⇒ disabled)."""
        if callable(self.rate):
            value = float(self.rate(view))
        else:
            value = float(self.rate)
        return value

    def is_enabled(self, view: MarkingView) -> bool:
        """Structural + guard enabling (rate positivity checked separately)."""
        counts = view
        for place, mult in self.inputs.items():
            if counts[place] < mult:
                return False
        if self.guard is not None and not self.guard(view):
            return False
        return True


class StochasticPetriNet:
    """A stochastic Petri net with marking-dependent rates and guards.

    Typical construction (mirrors the paper's Figure 1)::

        net = StochasticPetriNet("gcs")
        net.add_place("Tm", tokens=100)
        net.add_place("UCm")
        net.add_transition(
            "T_CP", inputs={"Tm": 1}, outputs={"UCm": 1},
            rate=lambda m: attacker_rate(m), guard=not_failed,
        )
    """

    def __init__(self, name: str = "spn") -> None:
        if not name or not isinstance(name, str):
            raise ModelError(f"net name must be a non-empty string, got {name!r}")
        self.name = name
        self._places: list[Place] = []
        self._place_index: dict[str, int] = {}
        self._transitions: list[Transition] = []
        self._transition_index: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_place(self, name: str, tokens: int = 0) -> Place:
        """Register a place; returns it."""
        if name in self._place_index:
            raise ModelError(f"duplicate place {name!r}")
        place = Place(name, tokens)
        self._place_index[name] = len(self._places)
        self._places.append(place)
        return place

    def add_transition(
        self,
        name: str,
        *,
        inputs: Optional[Mapping[str, int]] = None,
        outputs: Optional[Mapping[str, int]] = None,
        rate: RateLike = 1.0,
        guard: Optional[Guard] = None,
    ) -> Transition:
        """Register a timed transition; returns it.

        Arc place names must already be registered.
        """
        if name in self._transition_index:
            raise ModelError(f"duplicate transition {name!r}")
        transition = Transition(name, dict(inputs or {}), dict(outputs or {}), rate, guard)
        for place in (*transition.inputs, *transition.outputs):
            if place not in self._place_index:
                raise ModelError(
                    f"transition {name!r} references unknown place {place!r}"
                )
        self._transition_index[name] = len(self._transitions)
        self._transitions.append(transition)
        return transition

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def places(self) -> Sequence[Place]:
        return tuple(self._places)

    @property
    def transitions(self) -> Sequence[Transition]:
        return tuple(self._transitions)

    @property
    def place_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self._places)

    def place(self, name: str) -> Place:
        """Look up a place by name."""
        try:
            return self._places[self._place_index[name]]
        except KeyError:
            raise ModelError(f"unknown place {name!r}") from None

    def transition(self, name: str) -> Transition:
        """Look up a transition by name."""
        try:
            return self._transitions[self._transition_index[name]]
        except KeyError:
            raise ModelError(f"unknown transition {name!r}") from None

    # ------------------------------------------------------------------
    # Marking machinery
    # ------------------------------------------------------------------
    @property
    def initial_marking(self) -> Marking:
        """The marking defined by the places' ``initial_tokens``."""
        return tuple(p.initial_tokens for p in self._places)

    def marking(self, **tokens: int) -> Marking:
        """Build a marking tuple from keyword token counts."""
        return marking_from(self.place_names, tokens)

    def view(self, marking: Marking) -> MarkingView:
        """Wrap a marking tuple for name-addressable access."""
        if len(marking) != len(self._places):
            raise ModelError(
                f"marking has {len(marking)} entries, net has {len(self._places)} places"
            )
        return MarkingView(self._place_index, marking)

    def enabled_transitions(self, marking: Marking) -> list[tuple[Transition, float]]:
        """Transitions enabled in ``marking`` with their evaluated rates.

        A transition appears iff it is structurally enabled, its guard
        passes and its evaluated rate is positive and finite; a
        non-finite rate raises :class:`~repro.errors.ModelError` (a
        modelling bug should never be silently dropped).
        """
        view = self.view(marking)
        result: list[tuple[Transition, float]] = []
        for t in self._transitions:
            if not t.is_enabled(view):
                continue
            rate = t.evaluate_rate(view)
            if rate != rate or rate in (float("inf"), float("-inf")):
                raise ModelError(
                    f"transition {t.name!r} evaluated to non-finite rate {rate!r} "
                    f"in marking {view.as_dict()!r}"
                )
            if rate > 0.0:
                result.append((t, rate))
        return result

    def fire(self, marking: Marking, transition: Transition) -> Marking:
        """The marking after firing ``transition`` from ``marking``."""
        counts = list(marking)
        for place, mult in transition.inputs.items():
            idx = self._place_index[place]
            counts[idx] -= mult
            if counts[idx] < 0:
                raise ModelError(
                    f"firing {transition.name!r} drove place {place!r} negative"
                )
        for place, mult in transition.outputs.items():
            counts[self._place_index[place]] += mult
        return tuple(counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StochasticPetriNet({self.name!r}, places={len(self._places)}, "
            f"transitions={len(self._transitions)})"
        )
