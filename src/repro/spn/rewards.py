"""Reward structures over SPN markings.

A *reward function* maps a marking view to a non-negative rate; the
expected accumulated reward until absorption (the paper's Ĉtotal
numerator) is then a per-state vector consumed by
:func:`repro.ctmc.absorbing.analyze_absorbing`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import ModelError
from .marking import MarkingView
from .reachability import ReachabilityGraph

__all__ = ["reward_vector", "indicator_reward"]

RewardFn = Callable[[MarkingView], float]
Predicate = Callable[[MarkingView], bool]


def reward_vector(graph: ReachabilityGraph, fn: RewardFn) -> np.ndarray:
    """Evaluate ``fn`` on every reachable marking.

    Returns a dense per-state array aligned with the CTMC built from
    ``graph``. Non-finite values raise :class:`~repro.errors.ModelError`
    immediately (silent NaNs in reward vectors are a classic source of
    wrong lifetime averages).
    """
    net = graph.net
    out = np.empty(graph.num_states)
    for i, marking in enumerate(graph.markings):
        value = float(fn(net.view(marking)))
        if not np.isfinite(value):
            raise ModelError(
                f"reward function returned non-finite value {value!r} "
                f"for marking {net.view(marking).as_dict()!r}"
            )
        out[i] = value
    return out


def indicator_reward(graph: ReachabilityGraph, predicate: Predicate) -> np.ndarray:
    """0/1 reward vector from a marking predicate."""
    return reward_vector(graph, lambda m: 1.0 if predicate(m) else 0.0)
