"""Exception hierarchy for :mod:`repro`.

Every error raised by this library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still distinguishing parameter problems (:class:`ParameterError`, also a
:class:`ValueError`) from numerical/solver issues
(:class:`SolverError`) and model-construction issues
(:class:`ModelError`).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParameterError",
    "ModelError",
    "StateSpaceError",
    "SolverError",
    "ConvergenceError",
    "NotAbsorbingError",
    "ProtocolError",
    "SimulationError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ParameterError(ReproError, ValueError):
    """An input parameter is out of its documented domain.

    Subclasses :class:`ValueError` so generic validation code that
    expects standard-library semantics keeps working.
    """


class ModelError(ReproError):
    """A model (SPN, CTMC, cost model) was constructed inconsistently."""


class StateSpaceError(ModelError):
    """State-space generation failed or exceeded its configured bound."""


class SolverError(ReproError):
    """A numerical solver failed to produce a usable answer."""


class ConvergenceError(SolverError):
    """An iterative solver exhausted its iteration budget."""


class NotAbsorbingError(SolverError):
    """An absorbing-chain analysis was requested on a chain in which
    absorption is not almost-sure from the initial state."""


class ProtocolError(ReproError):
    """A distributed protocol (GDH key agreement, voting) was driven
    through an invalid sequence of steps."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class ExperimentError(ReproError):
    """An experiment id is unknown or an experiment run failed."""
