"""Physical constants, unit helpers and paper default values.

All internal computations use SI base units: **seconds** for time,
**meters** for distance, **bits** for information, rates in **Hz**
(events per second). Costs are reported in **hop-bits per second** as in
the paper.

The ``PAPER_*`` constants mirror Section 5 of Cho & Chen (2009) and are
consumed by :func:`repro.params.GCSParameters.paper_defaults`.
"""

from __future__ import annotations

__all__ = [
    "SECOND",
    "MINUTE",
    "HOUR",
    "DAY",
    "KILOBIT",
    "MEGABIT",
    "BYTE_BITS",
    "PAPER_NUM_NODES",
    "PAPER_RADIUS_M",
    "PAPER_WIRELESS_RANGE_M",
    "PAPER_BANDWIDTH_BPS",
    "PAPER_JOIN_RATE_HZ",
    "PAPER_LEAVE_RATE_HZ",
    "PAPER_DATA_RATE_HZ",
    "PAPER_BASE_COMPROMISE_RATE_HZ",
    "PAPER_HOST_FALSE_NEGATIVE",
    "PAPER_HOST_FALSE_POSITIVE",
    "PAPER_NUM_VOTERS",
    "PAPER_BASE_INDEX_P",
    "PAPER_TIDS_GRID_S",
    "PAPER_TIDS_GRID_COST_S",
    "PAPER_M_VALUES",
    "BYZANTINE_FRACTION",
]

# ---------------------------------------------------------------------------
# Unit helpers (multiply to convert into base units).
# ---------------------------------------------------------------------------
SECOND: float = 1.0
MINUTE: float = 60.0
HOUR: float = 3600.0
DAY: float = 86400.0

BYTE_BITS: float = 8.0
KILOBIT: float = 1e3
MEGABIT: float = 1e6

# ---------------------------------------------------------------------------
# Paper Section 5 default operating point.
# ---------------------------------------------------------------------------
#: Initial number of group members (N).
PAPER_NUM_NODES: int = 100
#: Radius of the circular operational area (m).
PAPER_RADIUS_M: float = 500.0
#: Radio range used for the unit-disk connectivity model (m). The paper
#: does not state it; 250 m is the standard 802.11 outdoor figure used by
#: the MANET literature the paper builds on.
PAPER_WIRELESS_RANGE_M: float = 250.0
#: Shared wireless bandwidth (bits/s).
PAPER_BANDWIDTH_BPS: float = 1e6
#: Per-node join rate λ = 1 per hour.
PAPER_JOIN_RATE_HZ: float = 1.0 / HOUR
#: Per-node leave rate μ = 1 per 4 hours.
PAPER_LEAVE_RATE_HZ: float = 1.0 / (4.0 * HOUR)
#: Per-node group data packet rate λq = 1 per minute.
PAPER_DATA_RATE_HZ: float = 1.0 / MINUTE
#: Base node compromise rate λc = 1 per 12 hours.
PAPER_BASE_COMPROMISE_RATE_HZ: float = 1.0 / (12.0 * HOUR)
#: Host-based IDS per-node false negative probability p1.
PAPER_HOST_FALSE_NEGATIVE: float = 0.01
#: Host-based IDS per-node false positive probability p2.
PAPER_HOST_FALSE_POSITIVE: float = 0.01
#: Default number of vote-participants m.
PAPER_NUM_VOTERS: int = 5
#: Base index parameter p of the log/poly attacker and detection functions.
PAPER_BASE_INDEX_P: float = 3.0
#: TIDS grid of Figures 2 and 4 (seconds).
PAPER_TIDS_GRID_S: tuple[float, ...] = (5, 15, 30, 60, 120, 240, 480, 600, 1200)
#: TIDS grid of Figures 3 and 5 (seconds) — the cost figures start at 30 s.
PAPER_TIDS_GRID_COST_S: tuple[float, ...] = (30, 60, 120, 240, 480, 600, 1200)
#: Vote-participant counts swept in Figures 2-3.
PAPER_M_VALUES: tuple[int, ...] = (3, 5, 7, 9)
#: Byzantine failure threshold of security condition C2.
BYZANTINE_FRACTION: float = 1.0 / 3.0
