"""Small reusable argument validators.

All validators raise :class:`repro.errors.ParameterError` (a
``ValueError`` subclass) with a message naming the offending argument,
and return the validated value so they can be used inline::

    self.rate = require_positive("rate", rate)
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, TypeVar

import numpy as np

from .errors import ParameterError

__all__ = [
    "require_positive",
    "require_non_negative",
    "require_probability",
    "require_int",
    "require_positive_int",
    "require_non_negative_int",
    "require_in",
    "require_in_range",
    "require_odd",
    "require_finite",
    "require_sorted_unique",
]

T = TypeVar("T")


def require_finite(name: str, value: float) -> float:
    """Validate that ``value`` is a finite real number."""
    value = float(value)
    if math.isnan(value) or math.isinf(value):
        raise ParameterError(f"{name} must be finite, got {value!r}")
    return value


def require_positive(name: str, value: float) -> float:
    """Validate ``value > 0`` (finite)."""
    value = require_finite(name, value)
    if value <= 0.0:
        raise ParameterError(f"{name} must be > 0, got {value!r}")
    return value


def require_non_negative(name: str, value: float) -> float:
    """Validate ``value >= 0`` (finite)."""
    value = require_finite(name, value)
    if value < 0.0:
        raise ParameterError(f"{name} must be >= 0, got {value!r}")
    return value


def require_probability(name: str, value: float) -> float:
    """Validate ``0 <= value <= 1``."""
    value = require_finite(name, value)
    if not 0.0 <= value <= 1.0:
        raise ParameterError(f"{name} must be a probability in [0, 1], got {value!r}")
    return value


def require_int(name: str, value: object) -> int:
    """Validate that ``value`` is integral (bool is rejected)."""
    if isinstance(value, (bool, np.bool_)):
        raise ParameterError(f"{name} must be an integer, got {value!r}")
    if not isinstance(value, int):
        # Accept numpy integer types via duck-typing on __index__.
        try:
            return int(value.__index__())  # type: ignore[union-attr]
        except AttributeError:
            raise ParameterError(f"{name} must be an integer, got {value!r}") from None
    return int(value)


def require_positive_int(name: str, value: object) -> int:
    """Validate an integer ``value >= 1``."""
    ivalue = require_int(name, value)
    if ivalue < 1:
        raise ParameterError(f"{name} must be >= 1, got {ivalue}")
    return ivalue


def require_non_negative_int(name: str, value: object) -> int:
    """Validate an integer ``value >= 0``."""
    ivalue = require_int(name, value)
    if ivalue < 0:
        raise ParameterError(f"{name} must be >= 0, got {ivalue}")
    return ivalue


def require_in(name: str, value: T, allowed: Iterable[T]) -> T:
    """Validate membership of ``value`` in ``allowed``."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ParameterError(f"{name} must be one of {allowed!r}, got {value!r}")
    return value


def require_in_range(
    name: str,
    value: float,
    lo: float,
    hi: float,
    *,
    inclusive: bool = True,
) -> float:
    """Validate ``lo <= value <= hi`` (or strict when ``inclusive=False``)."""
    value = require_finite(name, value)
    ok = (lo <= value <= hi) if inclusive else (lo < value < hi)
    if not ok:
        bounds = f"[{lo}, {hi}]" if inclusive else f"({lo}, {hi})"
        raise ParameterError(f"{name} must lie in {bounds}, got {value!r}")
    return value


def require_odd(name: str, value: object) -> int:
    """Validate an odd positive integer (used for voter counts)."""
    ivalue = require_positive_int(name, value)
    if ivalue % 2 == 0:
        raise ParameterError(f"{name} must be odd, got {ivalue}")
    return ivalue


def require_sorted_unique(name: str, values: Sequence[float]) -> tuple[float, ...]:
    """Validate a strictly increasing sequence (e.g. a sweep grid)."""
    out = tuple(require_finite(f"{name}[{i}]", v) for i, v in enumerate(values))
    if len(out) == 0:
        raise ParameterError(f"{name} must be non-empty")
    for a, b in zip(out, out[1:]):
        if not a < b:
            raise ParameterError(f"{name} must be strictly increasing, got {values!r}")
    return out
