"""Unit-disk connectivity analysis.

Nodes within ``wireless_range_m`` of each other share a link; mobile
groups are the connected components of that graph (the paper defines a
mobile group by connectivity). Hop counts come from unweighted
shortest paths (BFS via ``scipy.sparse.csgraph``).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from ..errors import ParameterError
from .geometry import pairwise_distances

__all__ = [
    "adjacency_matrix",
    "connected_components",
    "connected_component_count",
    "average_hop_count",
    "hop_count_matrix",
]


def adjacency_matrix(positions: np.ndarray, range_m: float) -> np.ndarray:
    """Boolean unit-disk adjacency (no self-loops)."""
    if range_m <= 0:
        raise ParameterError(f"range_m must be > 0, got {range_m}")
    dist = pairwise_distances(positions)
    adj = dist <= range_m
    np.fill_diagonal(adj, False)
    return adj


def connected_components(positions: np.ndarray, range_m: float) -> np.ndarray:
    """Component label per node (labels are 0-based and contiguous)."""
    adj = adjacency_matrix(positions, range_m)
    n_comp, labels = csgraph.connected_components(
        sp.csr_matrix(adj), directed=False
    )
    return labels


def connected_component_count(positions: np.ndarray, range_m: float) -> int:
    """Number of mobile groups in this snapshot."""
    labels = connected_components(positions, range_m)
    return int(labels.max()) + 1 if labels.size else 0


def hop_count_matrix(positions: np.ndarray, range_m: float) -> np.ndarray:
    """Pairwise hop counts (``inf`` across partitions, 0 on diagonal)."""
    adj = adjacency_matrix(positions, range_m)
    return csgraph.shortest_path(
        sp.csr_matrix(adj.astype(np.int8)), method="D", unweighted=True, directed=False
    )


def average_hop_count(positions: np.ndarray, range_m: float) -> float:
    """Mean hop count over *connected* node pairs.

    Returns ``nan`` when no pair is connected (degenerate snapshots of
    one node). This is the empirical estimate of the ``H̄`` factor the
    cost model multiplies into every unicast message.
    """
    hops = hop_count_matrix(positions, range_m)
    n = hops.shape[0]
    if n < 2:
        return float("nan")
    iu = np.triu_indices(n, k=1)
    values = hops[iu]
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        return float("nan")
    return float(finite.mean())
