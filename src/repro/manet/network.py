"""Network facade consumed by the communication-cost model.

Bundles the quantities the cost equations need — average hop count,
flooding semantics, partition/merge rates, bandwidth — behind one object
with two constructors:

* :meth:`NetworkModel.analytic` — closed-form estimates (mean distance
  in a disk over radio range, with a √2 detour factor for multi-hop
  routes); instant, used by tests and quick sweeps;
* :meth:`NetworkModel.from_mobility` — measured from a random-waypoint
  trace (the paper's approach for partition/merge rates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ParameterError
from ..params import NetworkParameters
from .geometry import mean_distance_in_disk
from .partition import PartitionMergeEstimate, estimate_partition_merge_rates

__all__ = ["NetworkModel"]

#: Multi-hop routes in random unit-disk graphs are longer than the
#: straight-line distance divided by the radio range; the √2-ish detour
#: factor is the standard first-order correction.
_DETOUR_FACTOR = 1.3


@dataclass(frozen=True)
class NetworkModel:
    """Hop/bandwidth/group-dynamics summary of the MANET.

    ``avg_hops`` is ``H̄``, the expected hop count between two random
    connected members — every unicast message costs
    ``payload_bits × H̄`` hop-bits. Flooding a payload to a group of
    ``n`` members costs ``n × payload_bits`` hop-bits (each member
    rebroadcasts once — blind flooding, the conservative baseline the
    GDH and group-communication costs assume).
    """

    params: NetworkParameters
    avg_hops: float
    partition_rate_hz: float
    merge_rate_hz: float
    measured: bool = False

    def __post_init__(self) -> None:
        if self.avg_hops < 1.0:
            raise ParameterError(f"avg_hops must be >= 1, got {self.avg_hops}")
        if self.partition_rate_hz < 0.0 or self.merge_rate_hz <= 0.0:
            raise ParameterError("partition rate must be >= 0 and merge rate > 0")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def analytic(cls, params: NetworkParameters) -> "NetworkModel":
        """Closed-form parameterisation (no simulation).

        Hop estimate: ``H̄ ≈ max(1, detour · E[d] / range)`` with
        ``E[d] = 128R/45π``. Partition/merge: a dense 100-node network in
        a 500 m arena with 250 m radios is connected almost always, so
        the analytic default is a slow partition rate (one per ~2 h per
        group) with fast re-merge (~2 min) — matching what the mobility
        simulation measures at the paper's operating point.
        """
        mean_d = mean_distance_in_disk(params.radius_m)
        hops = max(1.0, _DETOUR_FACTOR * mean_d / params.wireless_range_m)
        return cls(
            params=params,
            avg_hops=hops,
            partition_rate_hz=1.0 / 7200.0,
            merge_rate_hz=1.0 / 120.0,
            measured=False,
        )

    @classmethod
    def from_mobility(
        cls,
        params: NetworkParameters,
        *,
        duration_s: float = 3600.0,
        dt_s: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ) -> "NetworkModel":
        """Measure hops and partition/merge rates from a mobility run."""
        est = estimate_partition_merge_rates(
            params, duration_s=duration_s, dt_s=dt_s, rng=rng
        )
        return cls.from_estimate(params, est)

    @classmethod
    def from_estimate(
        cls, params: NetworkParameters, estimate: PartitionMergeEstimate
    ) -> "NetworkModel":
        """Wrap a pre-computed :class:`PartitionMergeEstimate`."""
        return cls(
            params=params,
            avg_hops=max(1.0, estimate.mean_hop_count),
            partition_rate_hz=estimate.partition_rate_hz,
            merge_rate_hz=max(estimate.merge_rate_hz, 1e-9),
            measured=True,
        )

    # ------------------------------------------------------------------
    # Cost primitives (hop-bits)
    # ------------------------------------------------------------------
    def unicast_cost_bits(self, payload_bits: float) -> float:
        """Hop-bits to deliver ``payload_bits`` to one random member."""
        if payload_bits < 0:
            raise ParameterError("payload_bits must be >= 0")
        return payload_bits * self.avg_hops

    def flood_cost_bits(self, payload_bits: float, n_members: int) -> float:
        """Hop-bits to flood ``payload_bits`` to an ``n``-member group.

        Blind flooding: every member transmits the payload once.
        """
        if payload_bits < 0:
            raise ParameterError("payload_bits must be >= 0")
        if n_members < 0:
            raise ParameterError("n_members must be >= 0")
        return payload_bits * n_members

    def neighborhood_cost_bits(self, payload_bits: float) -> float:
        """Hop-bits for a single-hop local broadcast (beacons, ballots
        to nearby voters): one transmission."""
        if payload_bits < 0:
            raise ParameterError("payload_bits must be >= 0")
        return payload_bits

    def transmission_time_s(self, total_bits: float) -> float:
        """Serialisation time of ``total_bits`` on the shared channel."""
        if total_bits < 0:
            raise ParameterError("total_bits must be >= 0")
        return total_bits / self.params.bandwidth_bps

    def describe(self) -> str:
        src = "measured" if self.measured else "analytic"
        return (
            f"NetworkModel[{src}](H̄={self.avg_hops:.2f}, "
            f"ν_part={self.partition_rate_hz:.3g}/s, "
            f"ν_merge={self.merge_rate_hz:.3g}/s, "
            f"BW={self.params.bandwidth_bps:g}bps)"
        )
