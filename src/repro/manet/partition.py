"""Group partition/merge rate estimation from mobility traces.

The paper: "We model group merge and partition events by a birth-death
process [...] We obtain group merging/partitioning rates by simulation
for a sufficiently long period of time." This module is that simulation:
run random waypoint mobility, track the number of connected components
over time, and convert up/down crossings into per-group partition and
merge rates for the :class:`~repro.ctmc.birth_death.BirthDeathProcess`
``NG`` model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ParameterError, SimulationError
from ..params import NetworkParameters
from ..rng import as_generator
from .connectivity import average_hop_count, connected_component_count
from .waypoint import RandomWaypointModel

__all__ = ["PartitionMergeEstimate", "estimate_partition_merge_rates"]


@dataclass(frozen=True)
class PartitionMergeEstimate:
    """Measured group-dynamics statistics from a mobility run.

    Rates are *per existing group* (matching the level-scaled
    birth–death model): ``partition_rate_hz`` = partition events per
    group-second, ``merge_rate_hz`` = merge events per excess-group-
    second (time weighted by ``NG - 1``).
    """

    partition_rate_hz: float
    merge_rate_hz: float
    mean_groups: float
    max_groups_seen: int
    mean_hop_count: float
    duration_s: float
    samples: int

    def describe(self) -> str:
        return (
            f"partition={self.partition_rate_hz:.3g}/s/group, "
            f"merge={self.merge_rate_hz:.3g}/s/excess-group, "
            f"E[NG]={self.mean_groups:.2f}, H̄={self.mean_hop_count:.2f} hops"
        )


def estimate_partition_merge_rates(
    params: NetworkParameters,
    *,
    duration_s: float = 3600.0,
    dt_s: float = 1.0,
    hop_sample_every: int = 60,
    rng: Optional[np.random.Generator] = None,
) -> PartitionMergeEstimate:
    """Run mobility and measure partition/merge rates and hop counts.

    Parameters
    ----------
    params:
        Arena/radio/mobility parameters.
    duration_s, dt_s:
        Simulated horizon and sampling step. Component counts are
        compared between consecutive samples: an increase of ``k``
        counts as ``k`` partition events, a decrease as ``k`` merges
        (multi-splits in one step are rare at dt = 1 s).
    hop_sample_every:
        Hop-count matrices are O(n³)-ish; sample them sparsely.
    """
    if duration_s <= 0 or dt_s <= 0:
        raise ParameterError("duration_s and dt_s must be > 0")
    if hop_sample_every < 1:
        raise ParameterError("hop_sample_every must be >= 1")
    rng = as_generator(rng)
    model = RandomWaypointModel(params, rng)
    range_m = params.wireless_range_m

    partitions = 0
    merges = 0
    group_seconds = 0.0
    excess_group_seconds = 0.0
    ng_sum = 0.0
    ng_max = 0
    hops: list[float] = []

    prev_ng = connected_component_count(model.positions, range_m)
    samples = 0
    for i, positions in enumerate(model.trace(duration_s, dt_s)):
        ng = connected_component_count(positions, range_m)
        if ng > prev_ng:
            partitions += ng - prev_ng
        elif ng < prev_ng:
            merges += prev_ng - ng
        group_seconds += prev_ng * dt_s
        excess_group_seconds += max(prev_ng - 1, 0) * dt_s
        ng_sum += ng
        ng_max = max(ng_max, ng)
        if i % hop_sample_every == 0:
            h = average_hop_count(positions, range_m)
            if np.isfinite(h):
                hops.append(h)
        prev_ng = ng
        samples += 1

    if samples == 0:
        raise SimulationError("mobility trace produced no samples")
    if not hops:
        raise SimulationError(
            "no connected pairs observed; wireless range too small for the arena"
        )

    partition_rate = partitions / group_seconds if group_seconds > 0 else 0.0
    # With no excess-group time observed, fall back to a fast nominal
    # merge rate so the birth-death model stays well-posed (merges are
    # then irrelevant because partitions were never observed either).
    merge_rate = (
        merges / excess_group_seconds if excess_group_seconds > 0 else 1.0 / dt_s
    )
    return PartitionMergeEstimate(
        partition_rate_hz=partition_rate,
        merge_rate_hz=merge_rate,
        mean_groups=ng_sum / samples,
        max_groups_seen=ng_max,
        mean_hop_count=float(np.mean(hops)),
        duration_s=duration_s,
        samples=samples,
    )
