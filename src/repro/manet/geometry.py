"""Planar geometry helpers for the disk-shaped operational area."""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..errors import ParameterError
from ..rng import as_generator

__all__ = [
    "sample_points_in_disk",
    "pairwise_distances",
    "mean_distance_in_disk",
]


def sample_points_in_disk(
    n: int,
    radius: float,
    rng: Optional[np.random.Generator] = None,
    center: tuple[float, float] = (0.0, 0.0),
) -> np.ndarray:
    """``(n, 2)`` points uniform over a disk.

    Uses the inverse-CDF radius transform (``r = R·√u``) — uniform in
    *area*, not in radius.
    """
    if n < 0:
        raise ParameterError(f"n must be >= 0, got {n}")
    if radius <= 0:
        raise ParameterError(f"radius must be > 0, got {radius}")
    rng = as_generator(rng)
    r = radius * np.sqrt(rng.random(n))
    theta = rng.uniform(0.0, 2.0 * math.pi, n)
    pts = np.column_stack([r * np.cos(theta), r * np.sin(theta)])
    pts += np.asarray(center, dtype=float)
    return pts


def pairwise_distances(points: np.ndarray) -> np.ndarray:
    """Dense ``(n, n)`` Euclidean distance matrix (vectorised).

    For the group sizes in this model (≤ a few hundred nodes) the dense
    broadcasted form is faster than any tree structure.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ParameterError(f"points must have shape (n, 2), got {pts.shape}")
    deltas = pts[:, None, :] - pts[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", deltas, deltas))


def mean_distance_in_disk(radius: float) -> float:
    """Expected distance between two uniform points in a disk.

    Closed form ``128 R / (45 π) ≈ 0.9054 R`` — used by the analytic
    hop-count estimate when no mobility trace is available.
    """
    if radius <= 0:
        raise ParameterError(f"radius must be > 0, got {radius}")
    return 128.0 * radius / (45.0 * math.pi)
