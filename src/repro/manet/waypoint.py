"""Random waypoint mobility model (the paper's node mobility).

Each node repeatedly: picks a destination uniform in the disk, a speed
uniform in ``[v_min, v_max]``, travels there in a straight line, pauses
for ``pause_s``, and repeats. The implementation advances **all nodes at
once** with NumPy array updates, following the HPC guide's
vectorise-the-inner-loop idiom — a 3600-step, 100-node trace costs a few
milliseconds.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from ..errors import ParameterError
from ..params import NetworkParameters
from ..rng import as_generator
from .geometry import sample_points_in_disk

__all__ = ["RandomWaypointModel"]


class RandomWaypointModel:
    """Stateful random-waypoint mobility over a disk arena.

    Parameters
    ----------
    params:
        Network parameters (node count, radius, speeds, pause time).
    rng:
        Seeded generator (reproducible traces).

    Notes
    -----
    The classic random-waypoint speed-decay pathology (long-term mean
    speed drifting toward ``v_min``) is inherent to the model and left
    intact — the paper uses the standard model. Use ``v_min > 0``.
    """

    def __init__(
        self,
        params: NetworkParameters,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.params = params
        self._rng = as_generator(rng)
        n = params.num_nodes
        self.positions = sample_points_in_disk(n, params.radius_m, self._rng)
        self._waypoints = sample_points_in_disk(n, params.radius_m, self._rng)
        self._speeds = self._rng.uniform(
            params.speed_min_mps, params.speed_max_mps, n
        )
        self._pause_left = np.zeros(n)
        self.time_s = 0.0

    # ------------------------------------------------------------------
    def step(self, dt: float) -> np.ndarray:
        """Advance all nodes by ``dt`` seconds; returns positions.

        Nodes that reach their waypoint inside the step begin their
        pause; paused nodes whose pause expires pick a fresh waypoint
        and speed. Sub-step overshoot is clipped to the waypoint (the
        residual is absorbed into the pause), which for the dt ≪
        leg-duration regime used here introduces no measurable bias.
        """
        if dt <= 0:
            raise ParameterError(f"dt must be > 0, got {dt}")
        p = self.params
        pos, wp = self.positions, self._waypoints

        paused = self._pause_left > 0.0
        self._pause_left[paused] -= dt
        unpause = paused & (self._pause_left <= 0.0)
        if unpause.any():
            k = int(unpause.sum())
            self._waypoints[unpause] = sample_points_in_disk(
                k, p.radius_m, self._rng
            )
            self._speeds[unpause] = self._rng.uniform(
                p.speed_min_mps, p.speed_max_mps, k
            )
            self._pause_left[unpause] = 0.0

        moving = ~paused
        if moving.any():
            delta = wp[moving] - pos[moving]
            dist = np.linalg.norm(delta, axis=1)
            step_len = self._speeds[moving] * dt
            arrive = step_len >= dist
            frac = np.where(dist > 0.0, np.minimum(step_len / np.maximum(dist, 1e-300), 1.0), 1.0)
            pos[moving] += delta * frac[:, None]
            # Arrivals start pausing (with the leftover step time spent).
            arrived_idx = np.flatnonzero(moving)[arrive]
            if arrived_idx.size:
                self._pause_left[arrived_idx] = p.pause_s
                if p.pause_s == 0.0:
                    nxt = sample_points_in_disk(
                        arrived_idx.size, p.radius_m, self._rng
                    )
                    self._waypoints[arrived_idx] = nxt
                    self._speeds[arrived_idx] = self._rng.uniform(
                        p.speed_min_mps, p.speed_max_mps, arrived_idx.size
                    )
                    self._pause_left[arrived_idx] = 0.0

        self.time_s += dt
        return self.positions

    def trace(self, duration_s: float, dt: float) -> Iterator[np.ndarray]:
        """Yield position snapshots every ``dt`` for ``duration_s``.

        Yields ``ceil(duration/dt)`` frames; each frame is the *live*
        positions array (copy if you need to keep it).
        """
        if duration_s <= 0:
            raise ParameterError(f"duration_s must be > 0, got {duration_s}")
        steps = int(np.ceil(duration_s / dt))
        for _ in range(steps):
            yield self.step(dt)

    def snapshot(self) -> np.ndarray:
        """Copy of the current positions."""
        return self.positions.copy()
