"""MANET substrate: mobility, connectivity, partition/merge dynamics.

The paper's model consumes three quantities that come from the mobile
network rather than the security protocol:

* average **hop counts** for unicast/flooded traffic (the "hop" in the
  hop-bits/s cost unit),
* the **group partition and merge rates** feeding the ``NG``
  birth–death model ("obtained by simulation for a sufficiently long
  period"),
* the radio/bandwidth parameters bounding communication.

This subpackage provides the random waypoint mobility model (vectorised
NumPy), unit-disk connectivity analysis, the partition/merge rate
estimator, and the :class:`~repro.manet.network.NetworkModel` facade the
cost model consumes — with both simulation-measured and closed-form
analytic parameterisations.
"""

from .connectivity import (
    adjacency_matrix,
    average_hop_count,
    connected_component_count,
    connected_components,
)
from .geometry import pairwise_distances, sample_points_in_disk
from .network import NetworkModel
from .partition import PartitionMergeEstimate, estimate_partition_merge_rates
from .waypoint import RandomWaypointModel

__all__ = [
    "sample_points_in_disk",
    "pairwise_distances",
    "RandomWaypointModel",
    "adjacency_matrix",
    "connected_components",
    "connected_component_count",
    "average_hop_count",
    "PartitionMergeEstimate",
    "estimate_partition_merge_rates",
    "NetworkModel",
]
