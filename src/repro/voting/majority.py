"""The paper's Equation 1: voting-level ``Pfp`` / ``Pfn``.

Model (Section 4.1 of the paper):

* A target node is evaluated by ``m`` vote-participants drawn uniformly
  without replacement from the other live members of the group.
* A *compromised* voter colludes deterministically: it votes **against**
  a good target (to evict healthy nodes) and **for** a bad target (to
  keep compromised peers).
* A *good* voter applies its host IDS: against a good target it votes
  against with the per-node false-positive probability ``p2``; against a
  bad target it votes against with probability ``1 - p1`` (``p1`` is the
  per-node false-negative probability).
* The target is evicted iff at least ``N_majority = ⌈m/2⌉`` of the
  voters vote against it.

``Pfp`` is the eviction probability of a good target; ``Pfn`` is the
*retention* probability of a bad target. Conditioning on the number of
compromised voters ``K`` (hypergeometric in the current group mix) and
summing binomial tails for the good voters' errors yields the closed
form — an explicit, numerically stable restatement of the paper's
garbled-in-PDF Equation 1.

When fewer than ``m`` candidate voters exist (tiny or shrunken groups)
all available members vote; the majority threshold scales as
``⌈m_eff/2⌉``. With *no* candidate voters, no vote can be held:
``Pfp = 0`` and ``Pfn = 1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

import numpy as np

from ..errors import ParameterError
from ..validation import require_non_negative_int, require_odd, require_probability
from .combinatorics import binomial_tail, hypergeometric_pmf

__all__ = ["VotingErrorModel", "clear_table_cache"]


@dataclass(frozen=True)
class VotingErrorModel:
    """Closed-form voting error probabilities (Equation 1).

    Parameters
    ----------
    num_voters:
        ``m``, the number of vote-participants (odd).
    host_false_negative:
        ``p1`` — a good voter misses a bad target with this probability.
    host_false_positive:
        ``p2`` — a good voter flags a good target with this probability.
    """

    num_voters: int
    host_false_negative: float
    host_false_positive: float

    def __post_init__(self) -> None:
        require_odd("num_voters", self.num_voters)
        require_probability("host_false_negative", self.host_false_negative)
        require_probability("host_false_positive", self.host_false_positive)

    # ------------------------------------------------------------------
    # Scalar probabilities
    # ------------------------------------------------------------------
    def false_positive_probability(self, n_good: int, n_bad: int) -> float:
        """``Pfp``: probability a *good* target is evicted.

        ``n_good`` / ``n_bad`` are the current counts of trusted and
        compromised-undetected members (the paper's ``mark(Tm)`` and
        ``mark(UCm)``); the target is one of the good members, so the
        candidate-voter pool holds ``n_good - 1`` good and ``n_bad`` bad
        nodes.
        """
        require_non_negative_int("n_good", n_good)
        require_non_negative_int("n_bad", n_bad)
        if n_good < 1:
            raise ParameterError("false_positive_probability needs a good target (n_good >= 1)")
        return self._cached(n_good - 1, n_bad, self.host_false_positive, True)

    def false_negative_probability(self, n_good: int, n_bad: int) -> float:
        """``Pfn``: probability a *bad* target survives the vote.

        The target is one of the bad members, so the candidate pool
        holds ``n_good`` good and ``n_bad - 1`` bad nodes.
        """
        require_non_negative_int("n_good", n_good)
        require_non_negative_int("n_bad", n_bad)
        if n_bad < 1:
            raise ParameterError("false_negative_probability needs a bad target (n_bad >= 1)")
        return 1.0 - self._cached(n_good, n_bad - 1, 1.0 - self.host_false_negative, False)

    def probabilities(self, n_good: int, n_bad: int) -> Tuple[float, float]:
        """``(Pfp, Pfn)`` for the current group mix.

        Degenerate mixes are handled conservatively: with no good member
        there is no good target (``Pfp = 0``); with no bad member there
        is no bad target (``Pfn = 0``).
        """
        pfp = self.false_positive_probability(n_good, n_bad) if n_good >= 1 else 0.0
        pfn = self.false_negative_probability(n_good, n_bad) if n_bad >= 1 else 0.0
        return pfp, pfn

    # ------------------------------------------------------------------
    # Core computation
    # ------------------------------------------------------------------
    @lru_cache(maxsize=65536)
    def _cached(
        self, pool_good: int, pool_bad: int, p_err: float, bad_votes_against: bool
    ) -> float:
        """``P(#against >= ⌈m_eff/2⌉)`` for a voter pool of the given mix.

        ``p_err`` is the probability a *good* voter votes against the
        target; ``bad_votes_against`` states which way colluders vote
        (True for a good target, False for a bad target).
        """
        pool = pool_good + pool_bad
        m_eff = min(self.num_voters, pool)
        if m_eff == 0:
            return 0.0
        majority = math.ceil(m_eff / 2)
        total = 0.0
        for k in range(0, min(m_eff, pool_bad) + 1):
            weight = hypergeometric_pmf(k, pool_good, pool_bad, m_eff)
            if weight == 0.0:
                continue
            good_voters = m_eff - k
            if bad_votes_against:
                needed = majority - k  # k colluders already voted against
            else:
                needed = majority  # colluders vote "keep"; good voters must carry it
            total += weight * binomial_tail(needed, good_voters, p_err)
        return min(total, 1.0)

    # ------------------------------------------------------------------
    # Vectorised table for model evaluation
    # ------------------------------------------------------------------
    def table(self, max_nodes: int) -> Tuple[np.ndarray, np.ndarray]:
        """Dense ``(Pfp, Pfn)`` lookup tables over all group mixes.

        Entry ``[g, b]`` covers ``n_good = g``, ``n_bad = b`` for all
        ``g, b <= max_nodes``; cells outside the support (no valid
        target) hold 0. Computed fully vectorised (``gammaln``-based
        hypergeometric weights × a tiny binomial-tail lookup), because
        the fast model pipeline evaluates ~(2N)² cells per scenario;
        element-wise equality with the scalar methods is a test.

        Memoised process-wide on ``(m, p1, p2, max_nodes)``: the table
        is rate-free apart from these four scalars, and a batched sweep
        re-requests the same handful of tables for every grid point —
        recomputation used to dominate the whole batched solve. The
        cached arrays are read-only; callers index, never mutate.
        """
        return _table_cached(
            self.num_voters,
            self.host_false_negative,
            self.host_false_positive,
            max_nodes,
        )

    def _table_uncached(self, max_nodes: int) -> Tuple[np.ndarray, np.ndarray]:
        require_non_negative_int("max_nodes", max_nodes)
        n = max_nodes
        g_grid, b_grid = np.meshgrid(
            np.arange(n + 1), np.arange(n + 1), indexing="ij"
        )
        # Pfp: good target -> pool (g-1 good, b bad), colluders against.
        pfp = self._eviction_probability_grid(
            np.maximum(g_grid - 1, 0), b_grid, self.host_false_positive, True
        )
        pfp[g_grid < 1] = 0.0
        # Pfn: bad target -> pool (g good, b-1 bad), colluders for;
        # eviction needs good voters correct w.p. 1 - p1.
        evict = self._eviction_probability_grid(
            g_grid, np.maximum(b_grid - 1, 0), 1.0 - self.host_false_negative, False
        )
        pfn = 1.0 - evict
        pfn[b_grid < 1] = 0.0
        return pfp, pfn

    def _eviction_probability_grid(
        self,
        pool_good: np.ndarray,
        pool_bad: np.ndarray,
        p_err: float,
        bad_votes_against: bool,
    ) -> np.ndarray:
        """Vectorised counterpart of :meth:`_cached` over count grids."""
        from scipy.special import gammaln

        m = self.num_voters
        pool = pool_good + pool_bad
        m_eff = np.minimum(m, pool)
        majority = np.ceil(m_eff / 2.0).astype(np.int64)

        # Tiny binomial upper-tail lookup: tail[nn, kk] = P(Bin(nn,p)>=kk).
        tail = np.zeros((m + 1, m + 2))
        for nn in range(m + 1):
            for kk in range(m + 2):
                tail[nn, kk] = binomial_tail(kk, nn, p_err)

        log_pool_choose = gammaln(pool + 1)
        total = np.zeros(pool.shape, dtype=float)
        for k in range(0, m + 1):
            draws_left = m_eff - k
            valid = (k <= pool_bad) & (draws_left >= 0) & (draws_left <= pool_good)
            with np.errstate(invalid="ignore"):
                log_w = (
                    gammaln(pool_bad + 1)
                    - gammaln(k + 1)
                    - gammaln(np.maximum(pool_bad - k, 0) + 1)
                    + gammaln(pool_good + 1)
                    - gammaln(np.maximum(draws_left, 0) + 1)
                    - gammaln(np.maximum(pool_good - draws_left, 0) + 1)
                    - (
                        log_pool_choose
                        - gammaln(np.maximum(m_eff, 0) + 1)
                        - gammaln(np.maximum(pool - m_eff, 0) + 1)
                    )
                )
            weight = np.where(valid, np.exp(np.where(valid, log_w, 0.0)), 0.0)
            if bad_votes_against:
                needed = np.clip(majority - k, 0, m + 1)
            else:
                needed = np.clip(majority, 0, m + 1)
            good_voters = np.clip(draws_left, 0, m)
            total += weight * tail[good_voters, needed]
        total[m_eff == 0] = 0.0
        return np.minimum(total, 1.0)

    def false_alarm_probability(self, n_good: int, n_bad: int) -> float:
        """Combined false-alarm measure ``Pfp + Pfn`` the paper uses to
        explain the effect of ``m`` (Figure 2 discussion)."""
        pfp, pfn = self.probabilities(n_good, n_bad)
        return pfp + pfn


@lru_cache(maxsize=64)
def _table_cached(
    num_voters: int,
    host_false_negative: float,
    host_false_positive: float,
    max_nodes: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Process-wide memo behind :meth:`VotingErrorModel.table`.

    Keyed by exactly the scalars the table depends on; the arrays are
    frozen (``writeable = False``) so a mutating caller fails loudly
    instead of corrupting every future lookup.
    """
    model = VotingErrorModel(
        num_voters=num_voters,
        host_false_negative=host_false_negative,
        host_false_positive=host_false_positive,
    )
    pfp, pfn = model._table_uncached(max_nodes)
    pfp.setflags(write=False)
    pfn.setflags(write=False)
    return pfp, pfn


def clear_table_cache() -> None:
    """Drop the process-wide table memo (benchmarks, tests).

    Benchmarks that compare two pipelines in one process must clear
    this between timed runs — otherwise the first run warms the memo
    and the second gets its tables for free, biasing the comparison.
    """
    _table_cached.cache_clear()
