"""Numerically stable discrete-distribution building blocks.

Everything is computed in log space via ``math.lgamma`` so the voting
probabilities stay accurate for large groups and tiny per-node error
rates (``p1 = p2 = 1e-4`` with ``N = 1000`` is well within range).
Public functions accept plain ints/floats and return floats; they are
deliberately scalar — callers that need tables memoise at the
:class:`~repro.voting.majority.VotingErrorModel` level.
"""

from __future__ import annotations

import math

from ..errors import ParameterError

__all__ = [
    "log_binomial",
    "binomial_pmf",
    "binomial_tail",
    "hypergeometric_pmf",
]


def log_binomial(n: int, k: int) -> float:
    """``log C(n, k)``; ``-inf`` outside the support."""
    if n < 0:
        raise ParameterError(f"n must be >= 0, got {n}")
    if k < 0 or k > n:
        return float("-inf")
    return math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)


def binomial_pmf(k: int, n: int, p: float) -> float:
    """``P(Binomial(n, p) = k)``, exact in log space."""
    if n < 0:
        raise ParameterError(f"n must be >= 0, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ParameterError(f"p must be in [0, 1], got {p}")
    if k < 0 or k > n:
        return 0.0
    if p == 0.0:
        return 1.0 if k == 0 else 0.0
    if p == 1.0:
        return 1.0 if k == n else 0.0
    log_pmf = (
        log_binomial(n, k) + k * math.log(p) + (n - k) * math.log1p(-p)
    )
    return math.exp(log_pmf)


def binomial_tail(k: int, n: int, p: float) -> float:
    """Upper tail ``P(Binomial(n, p) >= k)``.

    Summed from the small side for accuracy (at most ``n + 1`` terms —
    voting uses ``n <= m``, a dozen at most, so no series tricks are
    needed).
    """
    if n < 0:
        raise ParameterError(f"n must be >= 0, got {n}")
    if k <= 0:
        return 1.0
    if k > n:
        return 0.0
    return math.fsum(binomial_pmf(j, n, p) for j in range(k, n + 1))


def hypergeometric_pmf(k: int, good: int, bad: int, draws: int) -> float:
    """``P(K = k)`` bad members among ``draws`` drawn without replacement
    from a pool of ``bad`` bad and ``good`` good members.

    Parameterised the way the voting model reads (pool composition
    rather than scipy's ``(M, n, N)``): the pool has ``good + bad``
    members, ``draws <= good + bad``.
    """
    if good < 0 or bad < 0:
        raise ParameterError(f"pool sizes must be >= 0, got good={good}, bad={bad}")
    total = good + bad
    if draws < 0 or draws > total:
        raise ParameterError(
            f"draws must be in [0, {total}], got {draws}"
        )
    if k < 0 or k > draws or k > bad or draws - k > good:
        return 0.0
    log_pmf = (
        log_binomial(bad, k)
        + log_binomial(good, draws - k)
        - log_binomial(total, draws)
    )
    return math.exp(log_pmf)
