"""Operational voting protocol (used by the discrete-event simulator).

Where :mod:`repro.voting.majority` gives the closed-form probabilities,
this module *runs* votes: sample ``m`` participants, collect ballots
(colluding compromised voters + error-prone good voters), apply the
majority rule. The simulator's Monte Carlo eviction statistics converge
to Equation 1, which is one of the cross-validation tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import ParameterError
from ..rng import as_generator
from ..validation import require_odd, require_probability

__all__ = ["Ballot", "VoteOutcome", "VotingProtocol"]


@dataclass(frozen=True)
class Ballot:
    """A single voter's ballot on a target."""

    voter: int
    against: bool
    voter_compromised: bool


@dataclass(frozen=True)
class VoteOutcome:
    """Result of one voting round on one target."""

    target: int
    target_compromised: bool
    evicted: bool
    ballots: tuple[Ballot, ...]

    @property
    def votes_against(self) -> int:
        return sum(1 for b in self.ballots if b.against)

    @property
    def num_voters(self) -> int:
        return len(self.ballots)


class VotingProtocol:
    """Majority voting with colluding compromised participants.

    Parameters mirror :class:`~repro.voting.majority.VotingErrorModel`;
    the two are intentionally interchangeable descriptions of the same
    protocol.
    """

    def __init__(
        self,
        num_voters: int,
        host_false_negative: float,
        host_false_positive: float,
    ) -> None:
        self.num_voters = require_odd("num_voters", num_voters)
        self.host_false_negative = require_probability(
            "host_false_negative", host_false_negative
        )
        self.host_false_positive = require_probability(
            "host_false_positive", host_false_positive
        )

    def select_voters(
        self,
        target: int,
        candidates: Sequence[int],
        rng: Optional[np.random.Generator] = None,
    ) -> list[int]:
        """Sample up to ``m`` distinct voters, excluding the target."""
        rng = as_generator(rng)
        pool = [c for c in candidates if c != target]
        if len(pool) <= self.num_voters:
            return list(pool)
        picked = rng.choice(len(pool), size=self.num_voters, replace=False)
        return [pool[i] for i in picked]

    def cast_ballot(
        self,
        voter_compromised: bool,
        target_compromised: bool,
        rng: Optional[np.random.Generator] = None,
    ) -> bool:
        """One voter's against/for decision (True = against/evict).

        Compromised voters collude deterministically; good voters apply
        their host IDS with error rates ``p1`` / ``p2``.
        """
        rng = as_generator(rng)
        if voter_compromised:
            return not target_compromised
        if target_compromised:
            return rng.random() >= self.host_false_negative  # correct w.p. 1 - p1
        return rng.random() < self.host_false_positive  # error w.p. p2

    def conduct_vote(
        self,
        target: int,
        target_compromised: bool,
        candidates: Sequence[int],
        compromised: Sequence[int],
        rng: Optional[np.random.Generator] = None,
    ) -> VoteOutcome:
        """Run one full vote on ``target``.

        ``candidates`` is every live member eligible to vote (the target
        is excluded automatically); ``compromised`` lists the members
        whose ballots collude. With an empty voter pool the target
        trivially survives (no quorum — matches the analytic model's
        ``Pfp = 0`` / ``Pfn = 1`` convention).
        """
        rng = as_generator(rng)
        compromised_set = set(compromised)
        if target in compromised_set and not target_compromised:
            raise ParameterError(
                f"target {target} listed in compromised but flagged healthy"
            )
        voters = self.select_voters(target, candidates, rng)
        ballots = tuple(
            Ballot(
                voter=v,
                against=self.cast_ballot(v in compromised_set, target_compromised, rng),
                voter_compromised=v in compromised_set,
            )
            for v in voters
        )
        if not ballots:
            return VoteOutcome(target, target_compromised, evicted=False, ballots=())
        # ⌈m_eff/2⌉ matches the analytic model (paper's N_majority).
        majority = -(-len(ballots) // 2)
        evicted = sum(b.against for b in ballots) >= majority
        return VoteOutcome(target, target_compromised, evicted=evicted, ballots=ballots)
