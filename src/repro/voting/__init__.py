"""Voting-based intrusion detection: probability model and protocol.

The paper's Equation 1 expresses the voting-level false positive
(``Pfp``: a healthy node evicted) and false negative (``Pfn``: a
compromised node kept) probabilities in terms of

* the per-node host-IDS error probabilities ``p1`` (false negative) and
  ``p2`` (false positive),
* the number of vote-participants ``m``,
* the current mix of good and colluding compromised nodes.

:mod:`repro.voting.majority` implements the closed form with the
numerically stable combinatorics of :mod:`repro.voting.combinatorics`;
:mod:`repro.voting.protocol` implements the *operational* protocol
(sample voters, collect ballots, apply majority rule) used by the
discrete-event simulator, so the analytic probabilities can be
cross-validated against Monte Carlo ballots.
"""

from .combinatorics import (
    binomial_pmf,
    binomial_tail,
    hypergeometric_pmf,
    log_binomial,
)
from .majority import VotingErrorModel
from .protocol import Ballot, VoteOutcome, VotingProtocol

__all__ = [
    "log_binomial",
    "binomial_pmf",
    "binomial_tail",
    "hypergeometric_pmf",
    "VotingErrorModel",
    "VotingProtocol",
    "VoteOutcome",
    "Ballot",
]
