"""Command-line interface: ``repro-experiments`` / ``python -m repro.cli``.

Subcommands:

* ``list`` — show the experiment registry;
* ``run <id> [--full] [--seed S] [--out DIR]`` — run one experiment,
  print its tables, optionally write CSV/JSON artifacts;
* ``paper [--full] [--out DIR]`` — run every figure experiment
  (``fig2`` … ``fig5``);
* ``evaluate [--n N] [--m M] [--tids T] ...`` — single model evaluation
  with a summary report.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis.experiments import ExperimentConfig, get_experiment, list_experiments
from .analysis.io import write_experiment_artifacts
from .core.metrics import evaluate as evaluate_model
from .errors import ReproError
from .params import GCSParameters

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduction harness for Cho & Chen (IPDPS 2009): distributed "
            "intrusion detection for mobile group communication systems."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")

    p_run = sub.add_parser("run", help="run one experiment")
    p_run.add_argument("experiment", help="experiment id (see 'list')")
    p_run.add_argument("--full", action="store_true", help="paper-scale N=100")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--out", default=None, help="artifact directory")
    p_run.add_argument(
        "--plot", action="store_true", help="render ASCII plots of each series"
    )

    p_paper = sub.add_parser("paper", help="run all figure experiments")
    p_paper.add_argument("--full", action="store_true")
    p_paper.add_argument("--seed", type=int, default=0)
    p_paper.add_argument("--out", default=None)

    p_eval = sub.add_parser("evaluate", help="evaluate one parameter point")
    p_eval.add_argument("--n", type=int, default=100, help="group size N")
    p_eval.add_argument("--m", type=int, default=5, help="vote participants")
    p_eval.add_argument("--tids", type=float, default=60.0, help="TIDS seconds")
    p_eval.add_argument(
        "--attacker",
        default="linear",
        choices=("logarithmic", "linear", "polynomial"),
    )
    p_eval.add_argument(
        "--detection",
        default="linear",
        choices=("logarithmic", "linear", "polynomial"),
    )
    p_eval.add_argument("--breakdown", action="store_true")
    return parser


def _cmd_list() -> int:
    for exp in list_experiments():
        print(f"{exp.id:14s} {exp.paper_artifact:32s} {exp.title}")
    return 0


def _cmd_run(
    experiment: str,
    full: bool,
    seed: int,
    out: Optional[str],
    plot: bool = False,
) -> int:
    exp = get_experiment(experiment)
    result = exp.run(ExperimentConfig(quick=not full, seed=seed))
    print(result.render())
    if plot:
        from .analysis.plots import ascii_plot

        for series in result.series:
            try:
                print("\n" + ascii_plot(series))
            except ReproError as exc:
                print(f"\n(plot skipped for {series.name}: {exc})")
    if out:
        paths = write_experiment_artifacts(result, out)
        print(f"\nartifacts: {', '.join(str(p) for p in paths)}")
    return 0


def _cmd_paper(full: bool, seed: int, out: Optional[str]) -> int:
    status = 0
    for fig in ("fig2", "fig3", "fig4", "fig5"):
        status |= _cmd_run(fig, full, seed, out)
        print()
    return status


def _cmd_evaluate(args: argparse.Namespace) -> int:
    params = GCSParameters.paper_defaults(
        num_nodes=args.n,
        num_voters=args.m,
        detection_interval_s=args.tids,
        attacker_function=args.attacker,
        detection_function=args.detection,
    )
    result = evaluate_model(params, include_breakdown=args.breakdown)
    print(result.summary())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(
                args.experiment, args.full, args.seed, args.out, plot=args.plot
            )
        if args.command == "paper":
            return _cmd_paper(args.full, args.seed, args.out)
        if args.command == "evaluate":
            return _cmd_evaluate(args)
        parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
