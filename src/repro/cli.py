"""Command-line interface: ``repro-experiments`` / ``python -m repro.cli``.

Subcommands:

* ``list`` — show the experiment registry;
* ``run <id> [--full] [--seed S] [--out DIR]`` — run one experiment,
  print its tables, optionally write CSV/JSON artifacts;
* ``paper [--full] [--out DIR]`` — run every figure experiment
  (``fig2`` … ``fig5``);
* ``evaluate [--n N] [--m M] [--tids T] ...`` — single model evaluation
  with a summary report;
* ``sweep --axis k=v1,v2 … | --spec jobs.json`` — batch-evaluate a
  parameter grid (or a declarative multi-job campaign) through the
  :mod:`repro.engine` cache and backends;
* ``survivability --times T1,T2,… [--axis k=v1,v2 …]`` — time-bounded
  survivability curves ``S(t)`` over a parameter grid (batched
  transient analysis; same engine cache and backends);
* ``serve [--host H] [--port P] [--manifest-dir DIR]`` — run the sweep
  service: an HTTP job server (:mod:`repro.service`) other processes
  submit campaigns to with ``--jobs remote[:URL]`` (see
  ``docs/service.md``); ``--lease-ttl``/``--heartbeat-interval``/
  ``--chunk-size``/``--max-chunk-attempts`` tune its worker pool and
  ``--chunks-per-worker``/``--no-steal``/``--no-speculate`` its
  adaptive scheduler;
* ``work --server URL`` — run a pool worker against a sweep service:
  register, lease chunks of submitted campaigns, evaluate them on a
  local backend (``--jobs``), and report outcomes back; any number of
  workers may join, and the server survives them dying mid-chunk.

``run``, ``paper``, ``sweep`` and ``survivability`` all accept
``--jobs N|auto|thread[:N]|vector[:N]|remote[:URL]`` (evaluation
workers; 0/1 = serial; ``vector`` = the structure-sharing batched
solver; ``vector:N`` = the vector+procs hybrid fanning batch chunks
over ``N`` pool workers; ``remote`` = submit to a sweep service),
``--cache-dir DIR`` (persistent content-addressed
result cache, safe to share between concurrent processes),
``--cache-cap-mb MB`` (LRU disk eviction cap), ``--structure-cache
DIR|off`` (cross-worker lattice-structure sharing: shared memory by
default, an on-disk ``.npz`` cache under DIR, or ``off`` to rebuild
per worker), ``--kernel numba|fused|numpy`` (batched-solver kernel
tier — sets ``REPRO_KERNEL``; all tiers bit-identical) and
``--verbose`` (cache hit/miss/eviction statistics plus per-phase batch
timings).

They also share the observability flags (:mod:`repro.obs`):
``--trace FILE`` (span trace; Chrome/Perfetto JSON, or JSONL when FILE
ends in ``.jsonl``), ``--metrics-out FILE`` (merged counters /
histograms, worker deltas included), ``--manifest FILE`` (run manifest;
written automatically next to ``--out`` artifacts when tracing or
metrics are on), ``--log-level LEVEL`` (stdlib logging on the
``repro`` logger only) and ``--progress`` (single updating
``done/total`` line on stderr for sweep/survivability grids).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
from pathlib import Path
from typing import Any, Optional, Sequence

from .analysis.experiments import ExperimentConfig, get_experiment, list_experiments
from .analysis.io import write_experiment_artifacts
from .core.metrics import evaluate as evaluate_model
from .engine import BatchRunner, make_runner
from .engine.jobs import Campaign, SweepJob, load_campaign
from .errors import ParameterError, ReproError
from .obs import (
    RunManifest,
    batch_reports,
    configure_logging,
    enable_tracing,
    metrics,
    params_digest,
    reset_observability,
    write_chrome_trace,
    write_jsonl,
)
from .params import GCSParameters

__all__ = ["main", "build_parser"]


def _jobs_spec(text: str) -> "int | str":
    """``--jobs`` argparse type: ints parse, backend specs pass through."""
    try:
        return int(text)
    except ValueError:
        return text


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=_jobs_spec,
        default=None,
        metavar="N",
        help=(
            "evaluation workers: N (process pool), 'auto' (one per usable "
            "CPU), 'thread[:N]' (thread pool), 'vector' (structure-"
            "sharing batched solver, solves whole sweeps at once), "
            "'vector:N' (vector+procs hybrid: batched chunks fanned over "
            "N pool workers), or 'remote[:URL]' (submit to a sweep "
            "service started with 'serve'; URL defaults to "
            "$REPRO_SERVICE_URL); 0/1 = serial"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "persistent result cache directory (reused across runs; safe "
            "to share between concurrent processes)"
        ),
    )
    parser.add_argument(
        "--cache-cap-mb",
        type=float,
        default=None,
        metavar="MB",
        help=(
            "cap the disk cache at MB megabytes; least-recently-used "
            "records are evicted beyond it (requires --cache-dir)"
        ),
    )
    parser.add_argument(
        "--structure-cache",
        default=None,
        metavar="DIR|off",
        help=(
            "share the lattice structure with worker processes: a "
            "directory adds an on-disk .npz structure cache there, "
            "'off' disables sharing (rebuild per worker); default is "
            "shared memory, plus <cache-dir>/structures when "
            "--cache-dir is set"
        ),
    )
    parser.add_argument(
        "--kernel",
        choices=("numba", "fused", "numpy"),
        default=None,
        help=(
            "batched-solver kernel tier (sets REPRO_KERNEL for this run "
            "and every pool worker): 'numba' = jitted one-pass sweep "
            "(needs the optional numba extra; falls back to 'fused' "
            "when missing), 'fused' = fused-gather NumPy (default), "
            "'numpy' = pre-fusion reference; all tiers are bit-identical"
        ),
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="print cache hit/miss/eviction statistics and per-phase timings",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help=(
            "record a span trace of the run; written as Chrome trace JSON "
            "(load in Perfetto / chrome://tracing), or JSONL when FILE "
            "ends in .jsonl"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help=(
            "write the merged metrics registry (counters, gauges, "
            "histograms; worker deltas included) as JSON"
        ),
    )
    parser.add_argument(
        "--manifest",
        default=None,
        metavar="FILE",
        help=(
            "write a run manifest (params digest, git sha, backend, kernel "
            "flags, phase timings, cache stats, errors); with --trace or "
            "--metrics-out one is also written next to --out automatically"
        ),
    )
    parser.add_argument(
        "--log-level",
        default=None,
        metavar="LEVEL",
        help=(
            "enable stdlib logging on the 'repro' logger at LEVEL "
            "(DEBUG, INFO, WARNING, ...); the root logger is never touched"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help=(
            "print a single updating done/total (hits/evaluated/errors) "
            "line on stderr (sweep and survivability grids)"
        ),
    )


def _build_runner(args: argparse.Namespace) -> Optional[BatchRunner]:
    """A runner when any engine flag is set; ``None`` keeps the seed path.

    A lone ``--cache-cap-mb`` also reaches :func:`make_runner` so its
    "requires --cache-dir" validation fires instead of the flag being
    silently dropped.
    """
    if (
        args.jobs is None
        and args.cache_dir is None
        and args.cache_cap_mb is None
        and args.structure_cache is None
    ):
        return None
    return make_runner(
        args.jobs,
        args.cache_dir,
        cache_cap_mb=args.cache_cap_mb,
        structure_cache=args.structure_cache,
    )


def _print_cache_stats(
    runner: Optional[BatchRunner], verbose: bool, report: Any = None
) -> None:
    if runner is None or not verbose:
        return
    print(runner.cache.describe())
    stats = runner.cache.stats.as_dict()
    print(
        "cache stats: "
        + ", ".join(
            f"{key}={value:.3f}" if isinstance(value, float) else f"{key}={value}"
            for key, value in stats.items()
        )
    )
    if report is not None:
        print(report.describe_phases())
    else:
        line = _ledger_phases_line()
        if line:
            print(line)


def _ledger_phases_line() -> Optional[str]:
    """Aggregate phase timings across every batch this command ran.

    ``run``/``paper`` drive several batches through the experiment layer
    (one per figure series), so the per-batch reports are pulled from
    the observability ledger and summed.
    """
    reports = batch_reports()
    if not reports:
        return None
    phases: dict[str, float] = {}
    for report in reports:
        for name, seconds in report.get("phase_seconds", {}).items():
            phases[name] = phases.get(name, 0.0) + seconds
    if not phases:
        return None
    timings = " ".join(f"{name}={seconds:.3f}s" for name, seconds in phases.items())
    return f"phases ({len(reports)} batches): {timings}"


def _configure_obs(args: argparse.Namespace) -> None:
    """Per-invocation observability setup for engine-backed commands."""
    reset_observability()
    if args.log_level:
        try:
            configure_logging(args.log_level)
        except ValueError as exc:
            raise ParameterError(str(exc)) from None
    if args.trace:
        enable_tracing()


def _make_progress(total: int):
    """A ``ProgressFn`` updating one stderr line, plus its finisher."""
    state = {"done": 0, "cache": 0, "evaluated": 0, "error": 0}

    def update(index: int, key: str, source: str) -> None:
        state["done"] += 1
        state[source] += 1
        sys.stderr.write(
            f"\r{state['done']}/{total} points "
            f"(hits={state['cache']} evaluated={state['evaluated']} "
            f"errors={state['error']})"
        )
        sys.stderr.flush()

    def finish() -> None:
        if state["done"]:
            sys.stderr.write("\n")
            sys.stderr.flush()

    return update, finish


def _manifest_path(args: argparse.Namespace) -> Optional[Path]:
    if args.manifest:
        return Path(args.manifest)
    if not (args.trace or args.metrics_out):
        return None
    out = getattr(args, "out", None)
    if not out:
        return None
    out_path = Path(out)
    if args.command in ("run", "paper"):  # --out is an artifact directory
        return out_path / "manifest.json"
    return out_path.with_name(out_path.stem + ".manifest.json")


def _finish_obs(
    args: argparse.Namespace,
    runner: Optional[BatchRunner],
    *,
    fingerprints: Optional[Sequence[str]] = None,
    errors: Sequence[Any] = (),
) -> None:
    """Export trace / metrics / manifest after an engine-backed command."""
    if args.trace:
        path = Path(args.trace)
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.suffix == ".jsonl":
            write_jsonl(path)
        else:
            write_chrome_trace(path)
        print(f"trace: {path}")
    if args.metrics_out:
        path = Path(args.metrics_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(metrics().snapshot(), indent=2) + "\n")
        print(f"metrics: {path}")
    manifest_path = _manifest_path(args)
    if manifest_path is not None:
        manifest_path.parent.mkdir(parents=True, exist_ok=True)
        manifest = RunManifest(
            command=" ".join(
                ["repro-experiments", args.command]
                + ([args.experiment] if hasattr(args, "experiment") else [])
            ),
            backend=runner.backend.describe() if runner is not None else None,
            params_digest=(
                params_digest(fingerprints) if fingerprints is not None else None
            ),
            reports=batch_reports(),
            cache_stats=(
                runner.cache.stats.as_dict() if runner is not None else None
            ),
            errors=[error.as_dict() for error in errors],
        )
        manifest.write(manifest_path)
        print(f"manifest: {manifest_path}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduction harness for Cho & Chen (IPDPS 2009): distributed "
            "intrusion detection for mobile group communication systems."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")

    p_run = sub.add_parser("run", help="run one experiment")
    p_run.add_argument("experiment", help="experiment id (see 'list')")
    p_run.add_argument("--full", action="store_true", help="paper-scale N=100")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--out", default=None, help="artifact directory")
    p_run.add_argument(
        "--plot", action="store_true", help="render ASCII plots of each series"
    )
    _add_engine_flags(p_run)

    p_paper = sub.add_parser("paper", help="run all figure experiments")
    p_paper.add_argument("--full", action="store_true")
    p_paper.add_argument("--seed", type=int, default=0)
    p_paper.add_argument("--out", default=None)
    _add_engine_flags(p_paper)

    p_sweep = sub.add_parser(
        "sweep", help="batch-evaluate a parameter grid through the engine"
    )
    p_sweep.add_argument(
        "--axis",
        action="append",
        default=[],
        metavar="NAME=V1,V2,...",
        help="grid axis over any GCSParameters.replacing key (repeatable)",
    )
    p_sweep.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        dest="base",
        help="fixed base parameter override (repeatable)",
    )
    p_sweep.add_argument(
        "--spec", default=None, metavar="FILE", help="JSON campaign/job spec"
    )
    p_sweep.add_argument("--n", type=int, default=None, help="group size N")
    p_sweep.add_argument(
        "--method", default="fast", choices=("fast", "spn", "spn-coupled")
    )
    p_sweep.add_argument("--out", default=None, help="JSON artifact path")
    _add_engine_flags(p_sweep)

    p_surv = sub.add_parser(
        "survivability",
        help="time-bounded survivability curves S(t) over a parameter grid",
    )
    p_surv.add_argument(
        "--axis",
        action="append",
        default=[],
        metavar="NAME=V1,V2,...",
        help="grid axis over any GCSParameters.replacing key (repeatable; "
        "omit for a single-point curve)",
    )
    p_surv.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        dest="base",
        help="fixed base parameter override (repeatable)",
    )
    p_surv.add_argument("--n", type=int, default=None, help="group size N")
    p_surv.add_argument(
        "--times",
        default=None,
        metavar="T1,T2,...",
        help="strictly increasing mission times in seconds",
    )
    p_surv.add_argument(
        "--until",
        type=float,
        default=None,
        metavar="T",
        help="alternative to --times: evenly spaced grid up to T seconds",
    )
    p_surv.add_argument(
        "--points",
        type=int,
        default=8,
        metavar="K",
        help="grid size for --until (default 8)",
    )
    p_surv.add_argument(
        "--log",
        action="store_true",
        help="space the --until grid geometrically instead of evenly",
    )
    p_surv.add_argument(
        "--eps",
        type=float,
        default=1e-12,
        help="uniformization truncation mass per time point",
    )
    p_surv.add_argument("--out", default=None, help="JSON artifact path")
    _add_engine_flags(p_surv)

    p_serve = sub.add_parser(
        "serve", help="run the sweep-service HTTP job server"
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=8765,
        help="bind port (default 8765; 0 picks a free one)",
    )
    p_serve.add_argument(
        "--manifest-dir",
        default=None,
        metavar="DIR",
        help=(
            "write a run manifest per finished campaign under DIR "
            "(manifest-<job>.json)"
        ),
    )
    p_serve.add_argument(
        "--max-jobs",
        type=int,
        default=64,
        metavar="K",
        help="retain at most K jobs; oldest finished jobs evicted first",
    )
    p_serve.add_argument(
        "--lease-ttl",
        type=float,
        default=5.0,
        metavar="S",
        help=(
            "seconds a worker may hold a chunk without heartbeating "
            "before it is reassigned (default 5)"
        ),
    )
    p_serve.add_argument(
        "--heartbeat-interval",
        type=float,
        default=1.0,
        metavar="S",
        help="cadence workers are asked to heartbeat at (default 1)",
    )
    p_serve.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="K",
        help=(
            "points per leased chunk (default: auto, ~4 chunks per "
            "live worker)"
        ),
    )
    p_serve.add_argument(
        "--max-chunk-attempts",
        type=int,
        default=3,
        metavar="K",
        help=(
            "attempts before a repeatedly-failing chunk is declared "
            "poison and surfaced as a point error (default 3)"
        ),
    )
    p_serve.add_argument(
        "--chunks-per-worker",
        type=int,
        default=4,
        metavar="K",
        help=(
            "adaptive sizing target: carve roughly K chunks per live "
            "worker when --chunk-size is auto (default 4)"
        ),
    )
    p_serve.add_argument(
        "--no-steal",
        action="store_true",
        help=(
            "disable work stealing (idle workers splitting the tail "
            "off a straggler's leased chunk)"
        ),
    )
    p_serve.add_argument(
        "--no-speculate",
        action="store_true",
        help=(
            "disable tail speculation (idle workers duplicate-leasing "
            "in-flight chunks near the job tail)"
        ),
    )
    _add_engine_flags(p_serve)

    p_work = sub.add_parser(
        "work", help="run a worker pulling chunks from a sweep service"
    )
    p_work.add_argument(
        "--server",
        default=None,
        metavar="URL",
        help=(
            "sweep-service base URL (default $REPRO_SERVICE_URL, then "
            "http://127.0.0.1:8765)"
        ),
    )
    p_work.add_argument(
        "--name",
        default=None,
        help="worker label in the server's roster (default <host>:<pid>)",
    )
    p_work.add_argument(
        "--max-chunks",
        type=int,
        default=None,
        metavar="K",
        help="exit cleanly after K chunks (default: run until interrupted)",
    )
    p_work.add_argument(
        "--jobs",
        type=_jobs_spec,
        default=None,
        metavar="N",
        help=(
            "local backend leased chunks are evaluated on (same grammar "
            "as the engine commands, except 'remote'); default serial"
        ),
    )
    p_work.add_argument(
        "--kernel",
        choices=("numba", "fused", "numpy"),
        default=None,
        help=(
            "batched-solver kernel tier for leased chunks (sets "
            "REPRO_KERNEL; advertised in the server's /health roster)"
        ),
    )
    p_work.add_argument(
        "--log-level",
        default=None,
        metavar="LEVEL",
        help="enable stdlib logging on the 'repro' logger at LEVEL",
    )

    p_eval = sub.add_parser("evaluate", help="evaluate one parameter point")
    p_eval.add_argument("--n", type=int, default=100, help="group size N")
    p_eval.add_argument("--m", type=int, default=5, help="vote participants")
    p_eval.add_argument("--tids", type=float, default=60.0, help="TIDS seconds")
    p_eval.add_argument(
        "--attacker",
        default="linear",
        choices=("logarithmic", "linear", "polynomial"),
    )
    p_eval.add_argument(
        "--detection",
        default="linear",
        choices=("logarithmic", "linear", "polynomial"),
    )
    p_eval.add_argument("--breakdown", action="store_true")
    return parser


def _cmd_list() -> int:
    for exp in list_experiments():
        print(f"{exp.id:14s} {exp.paper_artifact:32s} {exp.title}")
    return 0


def _cmd_run(
    experiment: str,
    full: bool,
    seed: int,
    out: Optional[str],
    plot: bool = False,
    runner: Optional[BatchRunner] = None,
    verbose: bool = False,
) -> int:
    exp = get_experiment(experiment)
    result = exp.run(ExperimentConfig(quick=not full, seed=seed, runner=runner))
    print(result.render())
    if plot:
        from .analysis.plots import ascii_plot

        for series in result.series:
            try:
                print("\n" + ascii_plot(series))
            except ReproError as exc:
                print(f"\n(plot skipped for {series.name}: {exc})")
    if out:
        paths = write_experiment_artifacts(result, out)
        print(f"\nartifacts: {', '.join(str(p) for p in paths)}")
    _print_cache_stats(runner, verbose)
    return 0


def _cmd_paper(
    full: bool,
    seed: int,
    out: Optional[str],
    runner: Optional[BatchRunner] = None,
    verbose: bool = False,
) -> int:
    status = 0
    for fig in ("fig2", "fig3", "fig4", "fig5"):
        status |= _cmd_run(fig, full, seed, out, runner=runner)
        print()
    if runner is not None and not verbose:
        print(runner.cache.describe())
    _print_cache_stats(runner, verbose)
    return status


def _parse_scalar(text: str) -> Any:
    """int → float → bool → bare string, in that order."""
    for convert in (int, float):
        try:
            return convert(text)
        except ValueError:
            pass
    if text in ("true", "false"):
        return text == "true"
    return text


def _parse_assignment(text: str, *, what: str) -> tuple[str, str]:
    name, sep, value = text.partition("=")
    if not sep or not name or not value:
        raise ParameterError(f"{what} must look like NAME=VALUE, got {text!r}")
    return name, value


def _parse_axes_base(
    args: argparse.Namespace,
) -> tuple[dict[str, tuple[Any, ...]], dict[str, Any]]:
    """Shared ``--axis``/``--set``/``--n`` parsing for grid subcommands."""
    axes: dict[str, tuple[Any, ...]] = {}
    for spec in args.axis:
        name, values = _parse_assignment(spec, what="--axis")
        axes[name] = tuple(_parse_scalar(v) for v in values.split(",") if v)
    base: dict[str, Any] = {}
    for spec in args.base:
        name, value = _parse_assignment(spec, what="--set")
        base[name] = _parse_scalar(value)
    if args.n is not None:
        base["num_nodes"] = args.n
    return axes, base


def _sweep_campaign(args: argparse.Namespace) -> Campaign:
    if args.spec:
        if args.axis or args.base or args.n is not None:
            raise ParameterError("--spec excludes --axis/--set/--n")
        return load_campaign(args.spec)
    if not args.axis:
        raise ParameterError("sweep needs at least one --axis (or a --spec file)")
    axes, base = _parse_axes_base(args)
    job = SweepJob(name="cli-sweep", axes=axes, base=base, method=args.method)
    return Campaign(name="cli-sweep", jobs=(job,))


def _cmd_sweep(args: argparse.Namespace) -> int:
    campaign = _sweep_campaign(args)
    runner = _build_runner(args) or BatchRunner()
    progress, progress_done = (
        _make_progress(len(campaign)) if args.progress else (None, lambda: None)
    )
    try:
        outcome = campaign.run(runner, progress=progress)
    finally:
        progress_done()
    for job_outcome in outcome.outcomes:
        job = job_outcome.job
        axis_names = list(job.axes)
        print(f"== {job.name}: {len(job_outcome.points)} points ==")
        header = [f"{n:>20s}" for n in axis_names] + [
            f"{'MTTSF_s':>12s}",
            f"{'Ctotal_hop_bits_s':>18s}",
        ]
        print(" ".join(header))
        for assignment, result in job_outcome.points:
            cells = [f"{assignment[n]!s:>20s}" for n in axis_names]
            if result is None:
                cells.append(f"{'FAILED':>12s}")
                cells.append(f"{'FAILED':>18s}")
            else:
                cells.append(f"{result.mttsf_s:12.4e}")
                cells.append(f"{result.ctotal_hop_bits_s:18.4e}")
            print(" ".join(cells))
        print()
    print(outcome.report.describe())
    if not args.verbose:
        print(runner.cache.describe())
    _print_cache_stats(runner, args.verbose, report=outcome.report)
    for error in outcome.errors:
        print(f"error: {error}", file=sys.stderr)
    if args.out:
        artifact = {
            "campaign": campaign.to_dict(),
            "report": {
                "n_requested": outcome.report.n_requested,
                "n_unique": outcome.report.n_unique,
                "n_cache_hits": outcome.report.n_cache_hits,
                "n_evaluated": outcome.report.n_evaluated,
                "n_errors": outcome.report.n_errors,
            },
            "jobs": [
                {
                    "name": job_outcome.job.name,
                    "points": [
                        {
                            "assignment": dict(assignment),
                            "result": result.to_dict() if result else None,
                        }
                        for assignment, result in job_outcome.points
                    ],
                }
                for job_outcome in outcome.outcomes
            ],
        }
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(artifact, indent=2))
        print(f"artifact: {path}")
    _finish_obs(
        args,
        runner,
        fingerprints=[
            req.fingerprint()
            for job in campaign.jobs
            for _, req in job.requests()
        ],
        errors=outcome.errors,
    )
    if outcome.errors:
        # Partial series were reported (and marked FAILED) above; the
        # exit code must still flag them so CI never ships them silently.
        print(
            f"error: {len(outcome.errors)} of {outcome.report.n_requested} "
            "grid points failed",
            file=sys.stderr,
        )
        return 1
    return 0


def _survivability_times(args: argparse.Namespace) -> tuple[float, ...]:
    if args.times and args.until is not None:
        raise ParameterError("pass either --times or --until, not both")
    if args.times:
        return tuple(float(v) for v in args.times.split(",") if v)
    if args.until is not None:
        import numpy as np

        if args.points < 2:
            raise ParameterError(f"--points must be >= 2, got {args.points}")
        if args.log:
            grid = np.geomspace(args.until / 100.0, args.until, args.points)
        else:
            grid = np.linspace(args.until / args.points, args.until, args.points)
        return tuple(float(t) for t in grid)
    raise ParameterError("survivability needs --times T1,T2,... or --until T")


def _cmd_survivability(args: argparse.Namespace) -> int:
    from .engine.jobs import SurvivabilitySweep

    axes, base = _parse_axes_base(args)
    sweep = SurvivabilitySweep(
        name="cli-survivability",
        times_s=_survivability_times(args),
        axes=axes,
        base=base,
        eps=args.eps,
    )
    runner = _build_runner(args) or BatchRunner()
    progress, progress_done = (
        _make_progress(len(sweep)) if args.progress else (None, lambda: None)
    )
    try:
        outcome = sweep.run(runner, progress=progress)
    finally:
        progress_done()

    times = sweep.times_s
    shown = (
        list(range(len(times)))
        if len(times) <= 6
        else [0, 1, 2, 3, 4, len(times) - 1]
    )
    axis_names = list(sweep.axes)
    print(f"== {sweep.name}: {len(outcome.points)} points, S(t) ==")
    header = [f"{n:>20s}" for n in axis_names] + [
        f"{f'S@{times[i]:g}s':>12s}" for i in shown
    ]
    print(" ".join(header))
    for assignment, result in outcome.points:
        cells = [f"{assignment[n]!s:>20s}" for n in axis_names]
        if result is None:
            cells.extend([f"{'FAILED':>12s}"] * len(shown))
        else:
            cells.extend(f"{result.survival[i]:12.6f}" for i in shown)
        print(" ".join(cells))
    print()
    print(outcome.report.describe())
    if not args.verbose:
        print(runner.cache.describe())
    _print_cache_stats(runner, args.verbose, report=outcome.report)
    for error in outcome.errors:
        print(f"error: {error}", file=sys.stderr)
    if args.out:
        artifact = {
            "sweep": sweep.to_dict(),
            "report": {
                "n_requested": outcome.report.n_requested,
                "n_unique": outcome.report.n_unique,
                "n_cache_hits": outcome.report.n_cache_hits,
                "n_evaluated": outcome.report.n_evaluated,
                "n_errors": outcome.report.n_errors,
            },
            "points": [
                {
                    "assignment": dict(assignment),
                    "result": result.to_dict() if result else None,
                }
                for assignment, result in outcome.points
            ],
        }
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(artifact, indent=2))
        print(f"artifact: {path}")
    _finish_obs(
        args,
        runner,
        fingerprints=[req.fingerprint() for _, req in sweep.requests()],
        errors=outcome.errors,
    )
    if outcome.errors:
        print(
            f"error: {len(outcome.errors)} of {outcome.report.n_requested} "
            "grid points failed",
            file=sys.stderr,
        )
        return 1
    return 0


def _arm_stop_signals() -> None:
    """Make SIGINT/SIGTERM raise KeyboardInterrupt, even when backgrounded.

    Non-interactive shells start background jobs (``cmd &``) with SIGINT
    set to ignore, so a ``kill -INT`` from a supervising script — the CI
    jobs do exactly that — would never reach the clean-shutdown path.
    Long-running commands (serve, work) opt back in and treat SIGTERM
    the same way, so plain ``kill`` also deregisters/stops gracefully.
    """
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(sig, signal.default_int_handler)
        except (ValueError, OSError):  # pragma: no cover — non-main thread
            pass


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the sweep service until interrupted (SIGINT exits cleanly)."""
    from .service import PoolConfig, ServiceServer, SweepService

    _arm_stop_signals()

    jobs = args.jobs
    if isinstance(jobs, str) and jobs.strip().lower().startswith("remote"):
        raise ParameterError(
            "a server cannot evaluate through --jobs remote (that would "
            "just forward to another server); pick a local backend"
        )
    runner = _build_runner(args) or BatchRunner()
    service = SweepService(
        runner,
        manifest_dir=args.manifest_dir,
        max_jobs=args.max_jobs,
        pool_config=PoolConfig(
            lease_ttl_s=args.lease_ttl,
            heartbeat_interval_s=args.heartbeat_interval,
            chunk_size=args.chunk_size,
            max_attempts=args.max_chunk_attempts,
            chunks_per_worker=args.chunks_per_worker,
            steal=not args.no_steal,
            speculate=not args.no_speculate,
        ),
    )
    server = ServiceServer(service, host=args.host, port=args.port)
    url = server.start_in_background()
    print(f"sweep service listening on {url}")
    print(f"backend: {runner.backend.describe()}")
    print(runner.cache.describe())
    try:
        while not server.join(timeout=1.0):
            pass
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.stop()
    return 0


def _cmd_work(args: argparse.Namespace) -> int:
    """Run one pool worker against a sweep service until stopped."""
    from .engine.executor import make_backend
    from .service import DEFAULT_SERVICE_URL, ServiceError, ServiceWorker
    from .service.chaos import ChaosConfig

    _arm_stop_signals()
    if args.log_level:
        try:
            configure_logging(args.log_level)
        except ValueError as exc:
            raise ParameterError(str(exc)) from None
    jobs = args.jobs
    if isinstance(jobs, str) and jobs.strip().lower().startswith("remote"):
        raise ParameterError(
            "a worker cannot evaluate through --jobs remote (it IS the "
            "remote end); pick a local backend"
        )
    backend = make_backend(jobs) if jobs is not None else None
    url = (
        args.server
        or os.environ.get("REPRO_SERVICE_URL", "").strip()
        or DEFAULT_SERVICE_URL
    )
    worker = ServiceWorker(
        url,
        backend=backend,
        name=args.name,
        chaos=ChaosConfig.from_env(),
        max_chunks=args.max_chunks,
    )
    print(
        f"worker {worker.name} pulling from {url} "
        f"(backend {worker.backend.describe()})"
    )
    try:
        done = worker.run()
    except KeyboardInterrupt:
        worker.stop()
        done = worker.chunks_completed
        if worker.worker_id is not None:
            try:
                worker.client.deregister_worker(worker.worker_id)
            except ServiceError:
                pass
        print("\nshutting down")
    print(f"worker exiting after {done} chunks")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    params = GCSParameters.paper_defaults(
        num_nodes=args.n,
        num_voters=args.m,
        detection_interval_s=args.tids,
        attacker_function=args.attacker,
        detection_function=args.detection,
    )
    result = evaluate_model(params, include_breakdown=args.breakdown)
    print(result.summary())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if getattr(args, "kernel", None):
            # Applied via the environment so the selection reaches every
            # layer — dispatch seam, pool workers, manifest — without
            # threading a parameter through each one.
            os.environ["REPRO_KERNEL"] = args.kernel
        if hasattr(args, "trace"):  # engine-backed command: fresh obs state
            _configure_obs(args)
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            runner = _build_runner(args)
            code = _cmd_run(
                args.experiment,
                args.full,
                args.seed,
                args.out,
                plot=args.plot,
                runner=runner,
                verbose=args.verbose,
            )
            _finish_obs(args, runner)
            return code
        if args.command == "paper":
            runner = _build_runner(args)
            code = _cmd_paper(
                args.full,
                args.seed,
                args.out,
                runner=runner,
                verbose=args.verbose,
            )
            _finish_obs(args, runner)
            return code
        if args.command == "evaluate":
            return _cmd_evaluate(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "work":
            return _cmd_work(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "survivability":
            return _cmd_survivability(args)
        parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
