"""The GCS mission simulator.

Simulates one mission from the all-trusted state until security failure
(C1 data leak, C2 Byzantine takeover, or depletion), in one of two
fidelities (see the package docstring): ``rates`` — a CTMC trajectory
sampler firing the exact SPN rates; ``protocol`` — operational IDS
sweeps running real majority votes.

Communication cost is accrued by integrating the scenario's
state-dependent cost rate ``c(t, u, d)`` along the trajectory, so the
simulated Ĉtotal estimates the same quantity the analytic pipeline
computes (accumulated cost / time to failure).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..costs.aggregate import GCSCostModel
from ..errors import ParameterError, SimulationError
from ..manet.network import NetworkModel
from ..params import GCSParameters
from ..rng import as_generator
from ..voting.protocol import VotingProtocol
from .collectors import MissionRecord
from .entities import GroupState, NodeState
from .rates_helper import SimRates
from .engine import EventQueue

__all__ = ["GCSSimulator"]


class GCSSimulator:
    """Simulate missions of one GCS scenario."""

    def __init__(
        self,
        params: GCSParameters,
        network: NetworkModel,
        *,
        mode: str = "rates",
        cost_model: Optional[GCSCostModel] = None,
        max_time_s: float = 1e10,
    ) -> None:
        if mode not in ("rates", "protocol"):
            raise ParameterError(f"mode must be rates|protocol, got {mode!r}")
        self.params = params
        self.network = network
        self.mode = mode
        self.max_time_s = float(max_time_s)
        if self.max_time_s <= 0:
            raise ParameterError("max_time_s must be > 0")
        self.cost_model = cost_model or GCSCostModel(params, network)
        self.rates = SimRates.build(params, network)
        self.protocol = VotingProtocol(
            params.detection.num_voters,
            params.detection.host_false_negative,
            params.detection.host_false_positive,
        )

    # ------------------------------------------------------------------
    def run_mission(self, rng=None) -> MissionRecord:
        """One mission to failure; returns its :class:`MissionRecord`."""
        rng = as_generator(rng)
        if self.mode == "rates":
            return self._run_rates(rng)
        return self._run_protocol(rng)

    # ------------------------------------------------------------------
    # rates mode: exact CTMC trajectory sampling
    # ------------------------------------------------------------------
    def _run_rates(self, rng: np.random.Generator) -> MissionRecord:
        t = self.params.num_nodes
        u = 0
        d = 0
        now = 0.0
        cost = 0.0
        n_comp = n_det = n_fa = n_leak = 0

        while True:
            rates = {
                "compromise": self.rates.compromise(t, u),
                "leak": self.rates.data_leak(u),
                "detect": self.rates.detection(t, u),
                "accuse": self.rates.false_accusation(t, u),
                "evict": self.rates.rekey(t, u, d),
            }
            total = sum(rates.values())
            if total <= 0.0:
                # No live transitions and no failure: depletion corner.
                return MissionRecord(
                    ttsf_s=now,
                    failure_mode="depletion",
                    accumulated_cost_hop_bits=cost,
                    num_compromises=n_comp,
                    num_detections=n_det,
                    num_false_evictions=n_fa,
                    num_leak_attempts=n_leak,
                )
            dt = rng.exponential(1.0 / total)
            if now + dt > self.max_time_s:
                cost += self.cost_model.state_cost_rate(t, u, d) * (self.max_time_s - now)
                return MissionRecord(
                    ttsf_s=self.max_time_s,
                    failure_mode="censored",
                    accumulated_cost_hop_bits=cost,
                    num_compromises=n_comp,
                    num_detections=n_det,
                    num_false_evictions=n_fa,
                    num_leak_attempts=n_leak,
                )
            cost += self.cost_model.state_cost_rate(t, u, d) * dt
            now += dt

            pick = rng.random() * total
            for kind, rate in rates.items():
                pick -= rate
                if pick < 0.0:
                    break
            if kind == "compromise":
                t -= 1
                u += 1
                n_comp += 1
            elif kind == "leak":
                n_leak += 1
                return MissionRecord(
                    ttsf_s=now,
                    failure_mode="c1_data_leak",
                    accumulated_cost_hop_bits=cost,
                    num_compromises=n_comp,
                    num_detections=n_det,
                    num_false_evictions=n_fa,
                    num_leak_attempts=n_leak,
                )
            elif kind == "detect":
                u -= 1
                d += 1
                n_det += 1
            elif kind == "accuse":
                t -= 1
                d += 1
                n_fa += 1
            else:  # evict
                d -= 1

            if u > 0 and 2 * u > t:
                return MissionRecord(
                    ttsf_s=now,
                    failure_mode="c2_byzantine",
                    accumulated_cost_hop_bits=cost,
                    num_compromises=n_comp,
                    num_detections=n_det,
                    num_false_evictions=n_fa,
                    num_leak_attempts=n_leak,
                )

    # ------------------------------------------------------------------
    # protocol mode: operational IDS sweeps with real votes
    # ------------------------------------------------------------------
    def _run_protocol(self, rng: np.random.Generator) -> MissionRecord:
        params = self.params
        group = GroupState.fresh(params.num_nodes)
        queue = EventQueue()
        cost = 0.0
        last_time = 0.0
        n_comp = n_det = n_fa = n_leak = 0

        def accrue() -> None:
            nonlocal cost, last_time
            cost += self.cost_model.state_cost_rate(group.t, group.u, group.d) * (
                queue.now_s - last_time
            )
            last_time = queue.now_s

        def record(mode: str) -> MissionRecord:
            return MissionRecord(
                ttsf_s=queue.now_s,
                failure_mode=mode,
                accumulated_cost_hop_bits=cost,
                num_compromises=n_comp,
                num_detections=n_det,
                num_false_evictions=n_fa,
                num_leak_attempts=n_leak,
            )

        def schedule_compromise() -> None:
            delay = self.rates.sample_compromise_delay(group.t, group.u, rng)
            if np.isfinite(delay):
                queue.schedule(delay, "compromise")

        def schedule_sweep() -> None:
            live = group.t + group.u
            if live <= 0:
                return
            d_rate = self.rates.detection_invocation(live)
            if d_rate > 0.0:
                queue.schedule(1.0 / d_rate, "sweep")

        def schedule_leak(node: int) -> None:
            # Each compromised member requests data at rate λq.
            delay = rng.exponential(1.0 / params.workload.data_rate_hz)
            queue.schedule(delay, "data_request", payload=node)

        schedule_compromise()
        schedule_sweep()

        while True:
            event = queue.pop()
            if event is None:
                accrue()
                return record("depletion")
            if event.time_s > self.max_time_s:
                queue.now_s = self.max_time_s
                accrue()
                return record("censored")
            accrue()

            if event.kind == "compromise":
                trusted = group.trusted
                if trusted:
                    victim = int(rng.choice(trusted))
                    group.compromise(victim)
                    n_comp += 1
                    schedule_leak(victim)
                    if 2 * group.u > group.t:
                        return record("c2_byzantine")
                schedule_compromise()

            elif event.kind == "data_request":
                node = event.payload
                if group.of(node) is NodeState.COMPROMISED:
                    n_leak += 1
                    # The serving member's host IDS misses w.p. p1 -> leak.
                    if rng.random() < params.detection.host_false_negative:
                        return record("c1_data_leak")
                    schedule_leak(node)

            elif event.kind == "sweep":
                # Evaluate every live member by majority vote.
                live = list(group.live_members)
                compromised = set(group.compromised_undetected) | set(group.detected)
                for target in live:
                    state = group.of(target)
                    if state is NodeState.DETECTED:
                        continue
                    outcome = self.protocol.conduct_vote(
                        target,
                        state is NodeState.COMPROMISED,
                        [n for n in live if group.of(n) is not NodeState.DETECTED],
                        [n for n in compromised],
                        rng,
                    )
                    if outcome.evicted:
                        if state is NodeState.COMPROMISED:
                            n_det += 1
                        else:
                            n_fa += 1
                        group.detect(target)
                        tcm = self.rates.rekey_time(
                            group.t + group.u + group.d
                        )
                        queue.schedule(tcm, "evict", payload=target)
                if 2 * group.u > group.t:
                    return record("c2_byzantine")
                schedule_sweep()

            elif event.kind == "evict":
                node = event.payload
                if group.of(node) is NodeState.DETECTED:
                    group.evict(node)
                if group.t + group.u == 0 and group.d == 0:
                    return record("depletion")

            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event kind {event.kind!r}")
