"""Adapter exposing the model's rate bundle to the simulator.

Thin wrapper over :class:`repro.core.rates.GCSRates` so the simulator
fires events at exactly the analytic model's rates (``rates`` mode) and
derives sweep periods / rekey delays for the operational ``protocol``
mode from the same primitives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.rates import GCSRates
from ..manet.network import NetworkModel
from ..params import GCSParameters

__all__ = ["SimRates"]


@dataclass(frozen=True)
class SimRates:
    """Scalar rate accessors bound to one scenario."""

    core: GCSRates
    num_nodes: int

    @classmethod
    def build(cls, params: GCSParameters, network: NetworkModel) -> "SimRates":
        # Match the analytic engine's group-count treatment exactly: the
        # voting pools and rekey sizes are scaled by the stationary
        # expected number of groups (DESIGN.md §4.4).
        from ..ctmc.birth_death import BirthDeathProcess

        expected = BirthDeathProcess.for_group_count(
            network.partition_rate_hz,
            network.merge_rate_hz,
            params.groups.max_groups,
        ).mean_level()
        return cls(
            core=GCSRates.from_scenario(params, network, expected_groups=expected),
            num_nodes=params.num_nodes,
        )

    # -- SPN transition rates (rates mode) ------------------------------
    def compromise(self, t: int, u: int) -> float:
        return self.core.rate_compromise(t, u)

    def data_leak(self, u: int) -> float:
        return self.core.rate_data_leak(u)

    def detection(self, t: int, u: int) -> float:
        return self.core.rate_detection(t, u)

    def false_accusation(self, t: int, u: int) -> float:
        return self.core.rate_false_accusation(t, u)

    def rekey(self, t: int, u: int, d: int) -> float:
        return self.core.rate_rekey(t, u, d)

    # -- protocol-mode helpers ------------------------------------------
    def detection_invocation(self, live: int) -> float:
        """IDS sweep rate ``D(md)`` for the current live membership."""
        if live <= 0:
            return 0.0
        return self.core.detection.rate(self.num_nodes, live)

    def rekey_time(self, members: int) -> float:
        """GDH eviction-rekey broadcast time ``Tcm``."""
        return self.core.rekey.tcm_s(max(members, 2))

    def sample_compromise_delay(
        self, t: int, u: int, rng: np.random.Generator
    ) -> float:
        rate = self.compromise(t, u)
        return float(rng.exponential(1.0 / rate)) if rate > 0.0 else float("inf")
