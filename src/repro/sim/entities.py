"""Simulation entities: node states and the aggregate group state."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..errors import SimulationError

__all__ = ["NodeState", "GroupState"]


class NodeState(str, Enum):
    """Lifecycle of a member node (mirrors the SPN places)."""

    TRUSTED = "trusted"  # place Tm
    COMPROMISED = "compromised"  # place UCm (undetected)
    DETECTED = "detected"  # place DCm (awaiting eviction rekey)
    EVICTED = "evicted"  # token consumed by T_RK


@dataclass
class GroupState:
    """Aggregate membership bookkeeping for one mission run."""

    states: dict[int, NodeState] = field(default_factory=dict)

    @classmethod
    def fresh(cls, num_nodes: int) -> "GroupState":
        """All ``num_nodes`` members trusted (paper: initially all
        nodes are trusted)."""
        return cls(states={i: NodeState.TRUSTED for i in range(num_nodes)})

    # ------------------------------------------------------------------
    def of(self, node: int) -> NodeState:
        try:
            return self.states[node]
        except KeyError:
            raise SimulationError(f"unknown node {node}") from None

    def _members_in(self, state: NodeState) -> list[int]:
        return [n for n, s in self.states.items() if s is state]

    @property
    def trusted(self) -> list[int]:
        return self._members_in(NodeState.TRUSTED)

    @property
    def compromised_undetected(self) -> list[int]:
        return self._members_in(NodeState.COMPROMISED)

    @property
    def detected(self) -> list[int]:
        return self._members_in(NodeState.DETECTED)

    @property
    def live_members(self) -> list[int]:
        """Members holding the group key (Tm + UCm + DCm)."""
        return [
            n
            for n, s in self.states.items()
            if s in (NodeState.TRUSTED, NodeState.COMPROMISED, NodeState.DETECTED)
        ]

    # Counts mirroring the SPN marking --------------------------------
    @property
    def t(self) -> int:
        return sum(1 for s in self.states.values() if s is NodeState.TRUSTED)

    @property
    def u(self) -> int:
        return sum(1 for s in self.states.values() if s is NodeState.COMPROMISED)

    @property
    def d(self) -> int:
        return sum(1 for s in self.states.values() if s is NodeState.DETECTED)

    # Transitions -------------------------------------------------------
    def compromise(self, node: int) -> None:
        if self.of(node) is not NodeState.TRUSTED:
            raise SimulationError(f"cannot compromise node {node} in state {self.of(node)}")
        self.states[node] = NodeState.COMPROMISED

    def detect(self, node: int) -> None:
        if self.of(node) not in (NodeState.TRUSTED, NodeState.COMPROMISED):
            raise SimulationError(f"cannot detect node {node} in state {self.of(node)}")
        self.states[node] = NodeState.DETECTED

    def evict(self, node: int) -> None:
        if self.of(node) is not NodeState.DETECTED:
            raise SimulationError(f"cannot evict node {node} in state {self.of(node)}")
        self.states[node] = NodeState.EVICTED
