"""Statistics collection for simulation runs."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ParameterError

__all__ = ["MissionRecord", "ReplicationStats"]


@dataclass(frozen=True)
class MissionRecord:
    """Outcome of one simulated mission (one replication)."""

    ttsf_s: float
    failure_mode: str  # "c1_data_leak" | "c2_byzantine" | "depletion" | "censored"
    accumulated_cost_hop_bits: float
    num_compromises: int
    num_detections: int
    num_false_evictions: int
    num_leak_attempts: int

    @property
    def mean_cost_rate(self) -> float:
        """Lifetime-average cost rate of this mission (hop-bits/s)."""
        return self.accumulated_cost_hop_bits / self.ttsf_s if self.ttsf_s > 0 else 0.0


@dataclass(frozen=True)
class ReplicationStats:
    """Sample statistics with a normal-approximation confidence interval."""

    mean: float
    std: float
    count: int
    confidence: float = 0.95

    @classmethod
    def from_samples(
        cls, samples: Sequence[float], confidence: float = 0.95
    ) -> "ReplicationStats":
        arr = np.asarray(list(samples), dtype=float)
        if arr.size == 0:
            raise ParameterError("no samples")
        if not 0.0 < confidence < 1.0:
            raise ParameterError(f"confidence must be in (0,1), got {confidence}")
        std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
        return cls(mean=float(arr.mean()), std=std, count=arr.size, confidence=confidence)

    @property
    def half_width(self) -> float:
        """CI half-width (normal approximation; exact enough for the
        30+ replications the validation benches run)."""
        if self.count < 2:
            return float("inf")
        from scipy.stats import norm

        z = norm.ppf(0.5 + self.confidence / 2.0)
        return float(z * self.std / math.sqrt(self.count))

    @property
    def interval(self) -> tuple[float, float]:
        hw = self.half_width
        return (self.mean - hw, self.mean + hw)

    def contains(self, value: float) -> bool:
        lo, hi = self.interval
        return lo <= value <= hi

    def relative_half_width(self) -> float:
        return self.half_width / abs(self.mean) if self.mean else float("inf")

    def describe(self) -> str:
        lo, hi = self.interval
        return (
            f"{self.mean:.4g} ± {self.half_width:.3g} "
            f"[{lo:.4g}, {hi:.4g}] (n={self.count}, {self.confidence:.0%})"
        )
