"""Minimal deterministic discrete-event engine.

A binary-heap event queue with stable tie-breaking (insertion sequence)
and lazy cancellation. Deliberately small: the GCS simulator drives all
domain logic; the engine only orders time.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import SimulationError

__all__ = ["ScheduledEvent", "EventQueue"]


@dataclass(order=True)
class ScheduledEvent:
    """A queued event (orderable by time, then insertion sequence)."""

    time_s: float
    sequence: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)
    #: Owning queue (set by ``schedule``), so cancellation can keep the
    #: queue's live-event counter exact without a heap scan.
    _queue: Optional["EventQueue"] = field(
        compare=False, default=None, repr=False
    )

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped.

        Idempotent: cancelling twice decrements the owning queue's
        live-event counter once.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._live -= 1


class EventQueue:
    """Time-ordered event queue with lazy cancellation.

    ``len()`` is O(1): a live-event counter tracks schedules,
    cancellations and pops instead of scanning the heap (the simulator
    polls queue emptiness every iteration, so a scan would make the
    main loop quadratic in the backlog).
    """

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._counter = itertools.count()
        self._live = 0
        self.now_s: float = 0.0

    def __len__(self) -> int:
        return self._live

    def schedule(self, delay_s: float, kind: str, payload: Any = None) -> ScheduledEvent:
        """Queue an event ``delay_s`` from the current time."""
        if delay_s < 0.0:
            raise SimulationError(f"cannot schedule into the past (delay {delay_s})")
        event = ScheduledEvent(
            time_s=self.now_s + delay_s,
            sequence=next(self._counter),
            kind=kind,
            payload=payload,
            _queue=self,
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def schedule_at(self, time_s: float, kind: str, payload: Any = None) -> ScheduledEvent:
        """Queue an event at an absolute time (>= now)."""
        if time_s < self.now_s:
            raise SimulationError(
                f"cannot schedule at {time_s} before current time {self.now_s}"
            )
        return self.schedule(time_s - self.now_s, kind, payload)

    def pop(self) -> Optional[ScheduledEvent]:
        """Next live event (advancing the clock), or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time_s < self.now_s:  # pragma: no cover - defensive
                raise SimulationError("event queue went backwards in time")
            self.now_s = event.time_s
            self._live -= 1
            event._queue = None  # cancelling a popped event is a no-op
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event without popping."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time_s if self._heap else None

    def clear(self) -> None:
        """Drop all pending events (keeps the clock)."""
        for event in self._heap:
            event._queue = None  # detach: late cancels must not count
        self._heap.clear()
        self._live = 0
