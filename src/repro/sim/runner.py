"""Replication management and analytic-model comparison."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


from ..core.metrics import GCSEvaluation, resolve_network
from ..core.results import GCSResult
from ..errors import ParameterError
from ..manet.network import NetworkModel
from ..params import GCSParameters
from ..rng import spawn_children
from ..validation import require_positive_int
from .collectors import MissionRecord, ReplicationStats
from .gcs_sim import GCSSimulator

__all__ = ["SimulationSummary", "run_replications", "compare_with_model"]


@dataclass(frozen=True)
class SimulationSummary:
    """Aggregated replications of one scenario."""

    params: GCSParameters
    mode: str
    records: tuple[MissionRecord, ...]
    ttsf: ReplicationStats
    cost_rate: ReplicationStats

    @property
    def num_replications(self) -> int:
        return len(self.records)

    @property
    def failure_mode_fractions(self) -> dict[str, float]:
        n = len(self.records)
        out: dict[str, float] = {}
        for record in self.records:
            out[record.failure_mode] = out.get(record.failure_mode, 0.0) + 1.0 / n
        return out

    def describe(self) -> str:
        modes = ", ".join(
            f"{k}={v:.2f}" for k, v in sorted(self.failure_mode_fractions.items())
        )
        return (
            f"sim[{self.mode}] x{self.num_replications}: "
            f"TTSF {self.ttsf.describe()}; "
            f"cost {self.cost_rate.describe()} hop-bits/s; modes: {modes}"
        )


def run_replications(
    params: GCSParameters,
    *,
    replications: int = 30,
    mode: str = "rates",
    network: Optional[NetworkModel] = None,
    seed: Optional[int] = 0,
    max_time_s: float = 1e10,
) -> SimulationSummary:
    """Run independent missions and aggregate their statistics."""
    require_positive_int("replications", replications)
    net = resolve_network(params, network)
    sim = GCSSimulator(params, net, mode=mode, max_time_s=max_time_s)
    rngs = spawn_children(seed, replications)
    records = tuple(sim.run_mission(rng) for rng in rngs)
    censored = sum(1 for r in records if r.failure_mode == "censored")
    if censored == len(records):
        raise ParameterError(
            "every replication was censored; raise max_time_s"
        )
    return SimulationSummary(
        params=params,
        mode=mode,
        records=records,
        ttsf=ReplicationStats.from_samples([r.ttsf_s for r in records]),
        cost_rate=ReplicationStats.from_samples([r.mean_cost_rate for r in records]),
    )


@dataclass(frozen=True)
class ModelComparison:
    """Simulation vs analytic-model agreement report."""

    simulation: SimulationSummary
    analytic: GCSResult

    @property
    def mttsf_within_ci(self) -> bool:
        return self.simulation.ttsf.contains(self.analytic.mttsf_s)

    @property
    def mttsf_relative_error(self) -> float:
        return abs(self.simulation.ttsf.mean - self.analytic.mttsf_s) / self.analytic.mttsf_s

    @property
    def cost_relative_error(self) -> float:
        return (
            abs(self.simulation.cost_rate.mean - self.analytic.ctotal_hop_bits_s)
            / self.analytic.ctotal_hop_bits_s
        )

    def describe(self) -> str:
        return (
            f"analytic MTTSF={self.analytic.mttsf_s:.4g}s vs "
            f"sim {self.simulation.ttsf.describe()} "
            f"(rel err {self.mttsf_relative_error:.2%}, "
            f"{'inside' if self.mttsf_within_ci else 'OUTSIDE'} CI); "
            f"Ctotal rel err {self.cost_relative_error:.2%}"
        )


def compare_with_model(
    params: GCSParameters,
    *,
    replications: int = 30,
    mode: str = "rates",
    network: Optional[NetworkModel] = None,
    seed: Optional[int] = 0,
) -> ModelComparison:
    """Cross-validate the analytic pipeline against Monte Carlo."""
    net = resolve_network(params, network)
    summary = run_replications(
        params, replications=replications, mode=mode, network=net, seed=seed
    )
    analytic = GCSEvaluation(params, net).run(method="fast")
    return ModelComparison(simulation=summary, analytic=analytic)
