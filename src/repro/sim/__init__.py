"""Discrete-event simulation of the GCS with voting IDS.

The paper validates its SPN analytically (numerical CTMC solution) and
uses simulation only to parameterise group partition/merge rates. This
subpackage goes further and cross-validates the *whole model* by Monte
Carlo, in two fidelities:

* ``mode="rates"`` — events fire at exactly the SPN's marking-dependent
  rates (a CTMC trajectory sampler). Replication means must converge to
  the analytic MTTSF/Ĉtotal; this validates the solver stack end to end.
* ``mode="protocol"`` — the IDS runs *operationally*: periodic sweeps
  conduct real majority votes (:class:`repro.voting.protocol.VotingProtocol`)
  with sampled voters, colluding compromised participants and host-IDS
  verdict draws; rekeys take the GDH broadcast time. This validates that
  Equation 1 and the rate abstractions faithfully summarise the
  protocol's behaviour.

Modules: :mod:`engine` (event queue), :mod:`entities` (node/group
state), :mod:`gcs_sim` (the simulator), :mod:`collectors` (statistics),
:mod:`runner` (replications, confidence intervals, analytic comparison).
"""

from .collectors import MissionRecord, ReplicationStats
from .engine import EventQueue, ScheduledEvent
from .entities import GroupState, NodeState
from .gcs_sim import GCSSimulator
from .runner import SimulationSummary, compare_with_model, run_replications

__all__ = [
    "EventQueue",
    "ScheduledEvent",
    "NodeState",
    "GroupState",
    "GCSSimulator",
    "MissionRecord",
    "ReplicationStats",
    "SimulationSummary",
    "run_replications",
    "compare_with_model",
]
