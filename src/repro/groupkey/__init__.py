"""Contributory group key agreement (GDH) and rekeying costs.

The paper's GCS rekeys the shared group key with the GDH contributory
protocol (Steiner, Tsudik & Waidner, CCS'96) on every membership event —
join, leave, eviction, group partition, group merge — to preserve
forward/backward secrecy. This subpackage provides:

* :mod:`repro.groupkey.dh` — modular Diffie–Hellman primitives over
  configurable prime-field groups (functional toy groups for tests, a
  real 1536-bit MODP group for realism);
* :mod:`repro.groupkey.gdh` — an executable GDH.2 protocol with an exact
  per-message ledger (who sends what, how many field elements, how many
  bits) and end-of-round key-agreement verification;
* :mod:`repro.groupkey.rekey` — the
  :class:`~repro.groupkey.rekey.GroupKeyManager` state machine driving
  initial key agreement and incremental rekeys, and the
  :class:`~repro.groupkey.rekey.RekeyCostModel` that turns ledgers into
  hop-bits and into the paper's ``Tcm`` (rekey time, the reciprocal of
  the SPN's ``T_RK`` rate).
"""

from .dh import DHGroup, DHKeyPair
from .gdh import GDHMessage, GDHResult, MessageLedger, run_gdh2, run_gdh3
from .rekey import GroupKeyManager, RekeyCostModel, RekeyOperation

__all__ = [
    "DHGroup",
    "DHKeyPair",
    "GDHMessage",
    "GDHResult",
    "MessageLedger",
    "run_gdh2",
    "run_gdh3",
    "GroupKeyManager",
    "RekeyCostModel",
    "RekeyOperation",
]
