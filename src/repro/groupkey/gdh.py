"""Executable GDH.2 and GDH.3 protocols with exact message ledgers.

GDH.2 (Steiner, Tsudik & Waidner 1996) computes the shared key
``K = g^(x_1 x_2 ... x_n)`` in two stages:

* **Upflow** — member ``i`` sends member ``i+1`` the set
  ``{ g^(Π_{k ≤ i, k ≠ j} x_k) : j = 1..i } ∪ { g^(x_1 ... x_i) }``
  (``i + 1`` field elements);
* **Broadcast** — the last member ``n`` raises the partial values to
  ``x_n`` and floods ``{ g^(Π_{k ≠ j} x_k) : j = 1..n-1 }``
  (``n - 1`` elements); each member ``j`` then computes
  ``K = (g^(Π_{k ≠ j} x_k))^{x_j}``.

GDH.3 (same paper) trades rounds for bandwidth — four stages totalling
``3n - 3`` field elements instead of GDH.2's Θ(n²):

1. **Upflow** — single-value chain ``g^(x_1 ... x_i)`` (``n - 2``
   unicasts of 1 element);
2. **Broadcast** — ``g^(x_1 ... x_{n-1})`` flooded (1 element);
3. **Response** — every member ``i < n`` strips its own exponent with
   ``x_i^{-1} mod (p-1)`` and unicasts ``g^(Π_{k < n, k ≠ i} x_k)`` to
   member ``n`` (``n - 1`` unicasts of 1 element);
4. **Final broadcast** — member ``n`` raises each response to ``x_n``
   and floods the ``n - 1`` values.

Every message is recorded in a :class:`MessageLedger` with its element
count and bit size, so the communication cost model can charge exactly
what the protocol sends (unicast upflow/response, flooded broadcasts).
Each run verifies that all members derive the same key — the functional
correctness test of the substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..errors import ProtocolError
from ..rng import as_generator
from .dh import DHGroup, DHKeyPair

__all__ = ["GDHMessage", "MessageLedger", "GDHResult", "run_gdh2", "run_gdh3"]


@dataclass(frozen=True)
class GDHMessage:
    """One protocol message (unicast or broadcast)."""

    sender: int
    receiver: Optional[int]  # None = broadcast to the whole group
    num_elements: int
    element_bits: int
    stage: str  # "upflow" | "broadcast"

    @property
    def is_broadcast(self) -> bool:
        return self.receiver is None

    @property
    def payload_bits(self) -> int:
        return self.num_elements * self.element_bits


@dataclass
class MessageLedger:
    """Accumulated messages of one protocol run."""

    messages: list[GDHMessage] = field(default_factory=list)

    def record(self, message: GDHMessage) -> None:
        self.messages.append(message)

    @property
    def num_messages(self) -> int:
        return len(self.messages)

    @property
    def total_elements(self) -> int:
        return sum(m.num_elements for m in self.messages)

    @property
    def total_bits(self) -> int:
        return sum(m.payload_bits for m in self.messages)

    def unicast_bits(self) -> int:
        return sum(m.payload_bits for m in self.messages if not m.is_broadcast)

    def broadcast_bits(self) -> int:
        return sum(m.payload_bits for m in self.messages if m.is_broadcast)


@dataclass(frozen=True)
class GDHResult:
    """Outcome of a GDH.2 run."""

    group: DHGroup
    shared_key: int
    member_keys: tuple[int, ...]
    ledger: MessageLedger

    @property
    def num_members(self) -> int:
        return len(self.member_keys)


def _resolve_members(
    members: "int | Sequence[DHKeyPair]",
    group: Optional[DHGroup],
    rng: Optional[np.random.Generator],
    *,
    invertible: bool = False,
) -> tuple[list[DHKeyPair], DHGroup]:
    """Materialise key pairs (``invertible`` forces gcd(x, p-1) = 1,
    which GDH.3's response stage needs for exponent stripping)."""
    import math

    if isinstance(members, (int, np.integer)):
        n = int(members)
        if n < 2:
            raise ProtocolError(f"GDH needs at least 2 members, got {n}")
        group = group or DHGroup.toy()
        rng = as_generator(rng)
        pairs = []
        while len(pairs) < n:
            pair = DHKeyPair.generate(group, rng)
            if invertible and math.gcd(pair.private, group.prime - 1) != 1:
                continue
            pairs.append(pair)
        return pairs, group
    pairs = list(members)
    if len(pairs) < 2:
        raise ProtocolError(f"GDH needs at least 2 members, got {len(pairs)}")
    groups = {p.group.prime for p in pairs}
    if len(groups) != 1:
        raise ProtocolError("all members must share the same DH group")
    group = pairs[0].group
    if invertible:
        for pair in pairs:
            if math.gcd(pair.private, group.prime - 1) != 1:
                raise ProtocolError(
                    "GDH.3 requires private exponents invertible mod p-1; "
                    f"share {pair.private} is not"
                )
    return pairs, group


def run_gdh2(
    members: "int | Sequence[DHKeyPair]",
    group: Optional[DHGroup] = None,
    rng: Optional[np.random.Generator] = None,
) -> GDHResult:
    """Run GDH.2 initial key agreement.

    Parameters
    ----------
    members:
        Either a member count (key pairs are generated) or explicit
        :class:`DHKeyPair` shares.
    group:
        Field to work in (defaults to the fast toy group; pass
        :meth:`DHGroup.modp_1536` for realistic sizes — sizes only
        matter to the cost model, which reads them off the ledger).

    Raises
    ------
    ProtocolError
        If any member derives a different key (never happens with a
        correct implementation — this is the invariant the tests lean
        on).
    """
    pairs, group = _resolve_members(members, group, rng)
    n = len(pairs)
    g, p = group.generator, group.prime
    bits = group.element_bits
    ledger = MessageLedger()

    # ---- Upflow ------------------------------------------------------
    # State carried to member i+1: (partials, cardinal) where
    # partials[j] = g^(Π_{k<=i, k != j} x_k) for j = 0..i-1 and
    # cardinal = g^(x_1 ... x_i).
    x0 = pairs[0].private
    partials: list[int] = [g % p]  # g^(x1/x1) = g
    cardinal: int = pow(g, x0, p)
    ledger.record(GDHMessage(0, 1, len(partials) + 1, bits, "upflow"))

    for i in range(1, n - 1):
        xi = pairs[i].private
        new_partials = [pow(v, xi, p) for v in partials]
        new_partials.append(cardinal)  # missing-own-exponent slot for member i
        cardinal = pow(cardinal, xi, p)
        partials = new_partials
        ledger.record(GDHMessage(i, i + 1, len(partials) + 1, bits, "upflow"))

    # ---- Last member & broadcast --------------------------------------
    xn = pairs[n - 1].private
    shared_key = pow(cardinal, xn, p)
    broadcast_values = [pow(v, xn, p) for v in partials]  # n - 1 elements
    ledger.record(GDHMessage(n - 1, None, len(broadcast_values), bits, "broadcast"))

    member_keys: list[int] = []
    for j in range(n - 1):
        member_keys.append(pow(broadcast_values[j], pairs[j].private, p))
    member_keys.append(shared_key)

    if any(k != shared_key for k in member_keys):
        raise ProtocolError("GDH.2 key agreement failed: members derived different keys")

    return GDHResult(
        group=group,
        shared_key=shared_key,
        member_keys=tuple(member_keys),
        ledger=ledger,
    )


def run_gdh3(
    members: "int | Sequence[DHKeyPair]",
    group: Optional[DHGroup] = None,
    rng: Optional[np.random.Generator] = None,
) -> GDHResult:
    """Run GDH.3 initial key agreement (``3n - 3`` total elements).

    Same contract as :func:`run_gdh2`. Private exponents must be
    invertible modulo ``p - 1`` (generated shares are resampled until
    they are; explicit shares are validated).
    """
    pairs, group = _resolve_members(members, group, rng, invertible=True)
    n = len(pairs)
    g, p = group.generator, group.prime
    order = p - 1
    bits = group.element_bits
    ledger = MessageLedger()

    # ---- Stage 1: single-value upflow through members 0..n-2 ----------
    cardinal = pow(g, pairs[0].private, p)  # g^(x_1)
    for i in range(1, n - 1):
        ledger.record(GDHMessage(i - 1, i, 1, bits, "upflow"))
        cardinal = pow(cardinal, pairs[i].private, p)
    # cardinal == g^(x_1 ... x_{n-1})

    # ---- Stage 2: broadcast of the joint partial -----------------------
    ledger.record(GDHMessage(n - 2, None, 1, bits, "broadcast"))

    # ---- Stage 3: exponent-stripped responses to member n --------------
    responses: list[int] = []
    for i in range(n - 1):
        inv = pow(pairs[i].private, -1, order)
        responses.append(pow(cardinal, inv, p))  # g^(Π_{k<n, k≠i} x_k)
        ledger.record(GDHMessage(i, n - 1, 1, bits, "response"))

    # ---- Stage 4: final broadcast by member n ---------------------------
    xn = pairs[n - 1].private
    finals = [pow(r, xn, p) for r in responses]
    ledger.record(GDHMessage(n - 1, None, len(finals), bits, "final"))
    shared_key = pow(cardinal, xn, p)

    member_keys = [
        pow(finals[i], pairs[i].private, p) for i in range(n - 1)
    ]
    member_keys.append(shared_key)

    if any(k != shared_key for k in member_keys):
        raise ProtocolError("GDH.3 key agreement failed: members derived different keys")

    return GDHResult(
        group=group,
        shared_key=shared_key,
        member_keys=tuple(member_keys),
        ledger=ledger,
    )
