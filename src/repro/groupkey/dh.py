"""Prime-field Diffie–Hellman primitives.

Nothing here is novel cryptography — it is the minimal, correct modular
arithmetic the GDH protocol needs, with two practical group choices:

* :meth:`DHGroup.modp_1536` — the RFC 3526 1536-bit MODP group
  (generator 2), for realistic message sizes;
* :meth:`DHGroup.toy` — a 61-bit Mersenne-prime group for fast tests
  (the *protocol logic* is identical; only the field size differs).

Private exponents are sampled uniformly from ``[2, p - 2]``. Security
parameters are irrelevant for the simulation use-case; message *sizes*
(``element_bits``) are what the cost model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ParameterError
from ..rng import as_generator

__all__ = ["DHGroup", "DHKeyPair"]

#: RFC 3526, group 5 (1536-bit MODP). Generator 2.
_MODP_1536_HEX = (
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF"
)


@dataclass(frozen=True)
class DHGroup:
    """A multiplicative prime-field group ``(Z_p^*, g)``."""

    prime: int
    generator: int
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.prime < 5:
            raise ParameterError(f"prime must be >= 5, got {self.prime}")
        if not 2 <= self.generator < self.prime:
            raise ParameterError(
                f"generator must be in [2, p-1], got {self.generator}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def modp_1536(cls) -> "DHGroup":
        """RFC 3526 group 5 — realistic 1536-bit field elements."""
        return cls(prime=int(_MODP_1536_HEX, 16), generator=2, name="modp1536")

    @classmethod
    def toy(cls) -> "DHGroup":
        """61-bit Mersenne prime group — fast, for tests and simulation.

        ``p = 2^61 - 1`` is prime; 3 generates a large subgroup. Key
        agreement correctness (commuting exponents) holds in any cyclic
        group, which is all the protocol tests need.
        """
        return cls(prime=(1 << 61) - 1, generator=3, name="toy61")

    # ------------------------------------------------------------------
    @property
    def element_bits(self) -> int:
        """Size of one serialised field element in bits."""
        return self.prime.bit_length()

    def sample_private(self, rng: Optional[np.random.Generator] = None) -> int:
        """Uniform private exponent in ``[2, p - 2]``."""
        rng = as_generator(rng)
        # Draw 64-bit limbs until the value fits the range uniformly.
        span = self.prime - 3  # maps to [2, p-2]
        nbits = span.bit_length()
        while True:
            limbs = rng.integers(0, 1 << 32, size=(nbits + 31) // 32, dtype=np.int64)
            value = 0
            for limb in limbs:
                value = (value << 32) | int(limb)
            value &= (1 << nbits) - 1
            if value <= span:
                return value + 2

    def exp(self, base: int, exponent: int) -> int:
        """``base^exponent mod p``."""
        if not 0 <= base < self.prime:
            raise ParameterError("base must be reduced modulo p")
        return pow(base, exponent, self.prime)

    def public_of(self, private: int) -> int:
        """``g^private mod p``."""
        return pow(self.generator, private, self.prime)

    def __repr__(self) -> str:  # pragma: no cover
        return f"DHGroup({self.name}, {self.element_bits} bits)"


@dataclass(frozen=True)
class DHKeyPair:
    """A member's contributory share."""

    group: DHGroup
    private: int

    @classmethod
    def generate(
        cls, group: DHGroup, rng: Optional[np.random.Generator] = None
    ) -> "DHKeyPair":
        return cls(group=group, private=group.sample_private(rng))

    @property
    def public(self) -> int:
        return self.group.public_of(self.private)
