"""Rekey orchestration and cost accounting.

Two layers:

* :class:`GroupKeyManager` — a *functional* state machine holding the
  current membership and group key. Every membership event (join,
  leave, eviction, partition, merge) re-establishes a fresh contributory
  key by running GDH.2, so forward/backward secrecy is observable in
  tests: the key after an eviction differs from every key the evicted
  member ever held.
* :class:`RekeyCostModel` — charges each rekey *operation* in hop-bits
  and seconds. Costs follow the efficient auxiliary (AKA) variants of
  Steiner et al. rather than a full re-run — this is what the paper's
  ``Tcm`` ("communication time required for broadcasting a rekey
  message for a join or leave event based in GDH") measures, and it is
  deliberately cheaper than the functional layer's full re-run
  (documented substitution; see DESIGN.md §4).

Synthetic ledgers per operation on a group of resulting size ``n``:

====================  =========================================  =============
operation             messages                                   elements
====================  =========================================  =============
initial agreement     ``n-1`` unicasts (upflow) + 1 broadcast    ``Σ(i+1) + (n-1)``
join                  1 unicast to joiner + 1 broadcast          ``n`` + ``n``
leave / evict         1 broadcast by the controller              ``n - 1``
partition             1 broadcast in each surviving subgroup     ``k - 1`` each
merge                 1 unicast chain + 1 broadcast              ``n`` + ``n``
====================  =========================================  =============
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from ..errors import ParameterError, ProtocolError
from ..manet.network import NetworkModel
from ..rng import as_generator
from ..validation import require_positive_int
from .dh import DHGroup, DHKeyPair
from .gdh import GDHMessage, GDHResult, MessageLedger, run_gdh2

__all__ = ["RekeyOperation", "RekeyCostModel", "GroupKeyManager"]

_OPERATIONS = ("initial", "join", "leave", "evict", "partition", "merge")


@dataclass(frozen=True)
class RekeyOperation:
    """A performed rekey: what happened and what it cost."""

    kind: str
    group_size_after: int
    ledger: MessageLedger
    hop_bits: float
    duration_s: float


class RekeyCostModel:
    """Hop-bit and latency accounting for rekey operations.

    ``element_bits`` defaults to 1024 — the nominal public-value size
    the paper's era of GDH deployments used; pass
    ``DHGroup.modp_1536().element_bits`` to match the real field.
    """

    def __init__(
        self,
        network: NetworkModel,
        element_bits: int = 1024,
        *,
        initial_protocol: str = "gdh2",
    ) -> None:
        self.network = network
        self.element_bits = require_positive_int("element_bits", element_bits)
        if initial_protocol not in ("gdh2", "gdh3"):
            raise ParameterError(
                f"initial_protocol must be gdh2|gdh3, got {initial_protocol!r}"
            )
        self.initial_protocol = initial_protocol

    # ------------------------------------------------------------------
    def ledger_for(self, kind: str, n: int) -> MessageLedger:
        """Synthetic message ledger for operation ``kind`` with
        *resulting* group size ``n`` (see module table)."""
        if kind not in _OPERATIONS:
            raise ParameterError(f"unknown rekey kind {kind!r}; expected {_OPERATIONS}")
        if n < 0:
            raise ParameterError(f"group size must be >= 0, got {n}")
        bits = self.element_bits
        ledger = MessageLedger()
        if n <= 1:
            return ledger  # a lone member (or empty group) needs no protocol
        if kind == "initial" and self.initial_protocol == "gdh3":
            # GDH.3: 3n - 3 elements across four stages.
            for i in range(1, n - 1):
                ledger.record(GDHMessage(i - 1, i, 1, bits, "upflow"))
            ledger.record(GDHMessage(n - 2, None, 1, bits, "broadcast"))
            for i in range(n - 1):
                ledger.record(GDHMessage(i, n - 1, 1, bits, "response"))
            ledger.record(GDHMessage(n - 1, None, n - 1, bits, "final"))
        elif kind == "initial":
            for i in range(1, n):  # upflow message i has i+1 elements
                ledger.record(GDHMessage(i - 1, i, i + 1, bits, "upflow"))
            ledger.record(GDHMessage(n - 1, None, n - 1, bits, "broadcast"))
        elif kind == "join":
            ledger.record(GDHMessage(n - 2, n - 1, n, bits, "upflow"))
            ledger.record(GDHMessage(n - 1, None, n, bits, "broadcast"))
        elif kind in ("leave", "evict"):
            ledger.record(GDHMessage(0, None, n - 1, bits, "broadcast"))
        elif kind == "partition":
            ledger.record(GDHMessage(0, None, n - 1, bits, "broadcast"))
        elif kind == "merge":
            ledger.record(GDHMessage(0, 1, n, bits, "upflow"))
            ledger.record(GDHMessage(n - 1, None, n, bits, "broadcast"))
        return ledger

    def hop_bits(self, kind: str, n: int) -> float:
        """Total hop-bits of the operation: unicasts travel ``H̄`` hops,
        broadcasts are flooded through all ``n`` members."""
        ledger = self.ledger_for(kind, n)
        total = 0.0
        for msg in ledger.messages:
            if msg.is_broadcast:
                total += self.network.flood_cost_bits(msg.payload_bits, n)
            else:
                total += self.network.unicast_cost_bits(msg.payload_bits)
        return total

    def time_s(self, kind: str, n: int) -> float:
        """Serialisation time of the operation on the shared channel."""
        ledger = self.ledger_for(kind, n)
        return self.network.transmission_time_s(float(ledger.total_bits))

    def tcm_s(self, n: int) -> float:
        """The paper's ``Tcm``: rekey (eviction/leave) broadcast time.

        Strictly positive even for degenerate group sizes (a minimum of
        one element's transmission time) so the SPN's ``T_RK`` rate
        ``1/Tcm`` stays finite.
        """
        t = self.time_s("evict", n)
        floor = self.network.transmission_time_s(float(self.element_bits))
        return max(t, floor)


class GroupKeyManager:
    """Functional contributory key management for one mobile group.

    Maintains the member set and the current group key; every
    membership event produces a fresh GDH.2 agreement and an auditable
    :class:`RekeyOperation`. Keys are real field elements — tests verify
    agreement and forward/backward secrecy mechanically.
    """

    def __init__(
        self,
        members: Iterable[int],
        *,
        group: Optional[DHGroup] = None,
        cost_model: Optional[RekeyCostModel] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._group = group or DHGroup.toy()
        self._rng = as_generator(rng)
        self._cost_model = cost_model
        self._members: list[int] = list(dict.fromkeys(members))
        if len(self._members) < 2:
            raise ProtocolError("a group needs at least 2 members for key agreement")
        self._key: Optional[int] = None
        self._history: list[RekeyOperation] = []
        self._key_history: list[int] = []
        self._rekey("initial")

    # ------------------------------------------------------------------
    @property
    def members(self) -> tuple[int, ...]:
        return tuple(self._members)

    @property
    def current_key(self) -> int:
        assert self._key is not None
        return self._key

    @property
    def history(self) -> Sequence[RekeyOperation]:
        return tuple(self._history)

    @property
    def key_version(self) -> int:
        """Number of rekeys performed (initial agreement = version 1)."""
        return len(self._key_history)

    # ------------------------------------------------------------------
    def _rekey(self, kind: str) -> RekeyOperation:
        n = len(self._members)
        pairs = [DHKeyPair.generate(self._group, self._rng) for _ in self._members]
        result: GDHResult = run_gdh2(pairs)
        self._key = result.shared_key
        self._key_history.append(result.shared_key)
        if self._cost_model is not None:
            hop_bits = self._cost_model.hop_bits(kind, n)
            duration = self._cost_model.time_s(kind, n)
            ledger = self._cost_model.ledger_for(kind, n)
        else:
            hop_bits, duration, ledger = 0.0, 0.0, result.ledger
        op = RekeyOperation(
            kind=kind,
            group_size_after=n,
            ledger=ledger,
            hop_bits=hop_bits,
            duration_s=duration,
        )
        self._history.append(op)
        return op

    # ------------------------------------------------------------------
    def join(self, member: int) -> RekeyOperation:
        """Admit ``member`` and rekey (backward secrecy)."""
        if member in self._members:
            raise ProtocolError(f"member {member} already in the group")
        self._members.append(member)
        return self._rekey("join")

    def leave(self, member: int) -> RekeyOperation:
        """Voluntary departure of ``member`` and rekey (forward secrecy)."""
        return self._remove(member, "leave")

    def evict(self, member: int) -> RekeyOperation:
        """Forced eviction (IDS verdict) of ``member`` and rekey."""
        return self._remove(member, "evict")

    def _remove(self, member: int, kind: str) -> RekeyOperation:
        if member not in self._members:
            raise ProtocolError(f"member {member} not in the group")
        if len(self._members) <= 2:
            raise ProtocolError(
                "cannot remove below 2 members and keep a contributory key"
            )
        self._members.remove(member)
        return self._rekey(kind)

    def partition(self, departing: Sequence[int]) -> "GroupKeyManager":
        """Split ``departing`` members into a new group.

        Both halves rekey independently; returns the new group's
        manager. Each half must retain >= 2 members.
        """
        departing = list(dict.fromkeys(departing))
        for m in departing:
            if m not in self._members:
                raise ProtocolError(f"member {m} not in the group")
        staying = [m for m in self._members if m not in departing]
        if len(staying) < 2 or len(departing) < 2:
            raise ProtocolError("both partitions need at least 2 members")
        self._members = staying
        self._rekey("partition")
        return GroupKeyManager(
            departing,
            group=self._group,
            cost_model=self._cost_model,
            rng=self._rng,
        )

    def merge(self, other: "GroupKeyManager") -> RekeyOperation:
        """Absorb ``other``'s members and rekey the merged group."""
        overlap = set(self._members) & set(other._members)
        if overlap:
            raise ProtocolError(f"groups overlap on members {sorted(overlap)}")
        self._members.extend(other._members)
        return self._rekey("merge")

    def was_member_key(self, key: int) -> bool:
        """True if ``key`` ever was this group's key (secrecy tests)."""
        return key in self._key_history
