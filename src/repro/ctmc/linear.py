"""General (possibly cyclic) absorbing-chain solver via sparse LU.

Solves the restricted linear system

.. math:: (\\operatorname{diag}(q) - R)_{TT}\\, x_T
          = b_T + R_{TA}\\, x_A

for the transient block ``T`` given prescribed boundary values on the
absorbing block ``A``. One LU factorisation is reused across all
right-hand sides (hitting time, every reward, every absorption class),
which is what :func:`repro.ctmc.absorbing.analyze_absorbing` relies on.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import SolverError
from .chain import CTMC

__all__ = ["solve_linear_system"]


def solve_linear_system(
    chain: CTMC,
    numerators: np.ndarray,
    boundary: np.ndarray,
) -> np.ndarray:
    """Solve the absorbing boundary-value problem on a general chain.

    Same contract as :func:`repro.ctmc.acyclic.solve_dag` (per-state
    numerators ``b``, prescribed ``boundary`` on absorbing states) but
    with no acyclicity requirement. Raises
    :class:`~repro.errors.SolverError` when the transient block is
    singular, which happens exactly when absorption is not almost-sure
    from some transient state.
    """
    n = chain.num_states
    b = np.asarray(numerators, dtype=float)
    g = np.asarray(boundary, dtype=float)
    squeeze = b.ndim == 1
    if b.ndim == 1:
        b = b[:, None]
    if g.ndim == 1:
        g = g[:, None]
    if b.shape[0] != n or g.shape[0] != n:
        raise SolverError(
            f"numerators/boundary first dimension must be {n}, got {b.shape[0]}/{g.shape[0]}"
        )
    if g.shape[1] != b.shape[1]:
        raise SolverError("numerators and boundary must have matching column counts")

    absorbing = chain.absorbing_mask
    transient = ~absorbing
    x = np.zeros_like(b)
    x[absorbing] = g[absorbing]
    t_idx = np.flatnonzero(transient)
    if t_idx.size == 0:
        return x[:, 0] if squeeze else x

    R = chain.rates
    q = chain.out_rates
    a_idx = np.flatnonzero(absorbing)

    R_tt = R[t_idx][:, t_idx].tocsc()
    A = sp.diags(q[t_idx]) - R_tt
    rhs = b[t_idx].copy()
    if a_idx.size:
        rhs += R[t_idx][:, a_idx] @ x[a_idx]

    try:
        lu = spla.splu(A.tocsc())
        sol = lu.solve(np.ascontiguousarray(rhs))
    except RuntimeError as exc:  # SuperLU signals singularity this way
        raise SolverError(
            "transient block is singular: absorption is not almost-sure "
            "from every transient state"
        ) from exc
    if not np.all(np.isfinite(sol)):
        raise SolverError("linear solve produced non-finite values")

    x[t_idx] = sol
    return x[:, 0] if squeeze else x
