"""Stationary distributions of irreducible CTMCs.

Two methods:

* **GTH elimination** (Grassmann–Taksar–Heyman) on the uniformized jump
  chain — subtraction-free, numerically excellent, O(n³); the default for
  small chains such as the group-count (``NG``) birth–death model.
* **Power iteration** on the uniformized jump chain for larger sparse
  chains.

The caller is responsible for irreducibility; reducible inputs raise
:class:`~repro.errors.SolverError` when detected (absorbing states) and
otherwise produce the stationary distribution of the recurrent class
reachable from everywhere, which is ill-defined — hence the check.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConvergenceError, ParameterError, SolverError
from .chain import CTMC

__all__ = ["stationary_distribution", "gth_stationary"]


def gth_stationary(P: np.ndarray) -> np.ndarray:
    """Stationary vector of a finite irreducible stochastic matrix.

    Implements the GTH algorithm, which never subtracts and is therefore
    immune to the catastrophic cancellation direct solvers suffer on
    stiff chains.
    """
    P = np.array(P, dtype=float, copy=True)
    n = P.shape[0]
    if P.shape != (n, n):
        raise ParameterError(f"P must be square, got {P.shape}")
    if n == 1:
        return np.array([1.0])
    for k in range(n - 1, 0, -1):
        s = P[k, :k].sum()
        if s <= 0.0:
            raise SolverError(
                f"GTH elimination failed at state {k}: chain is reducible"
            )
        P[:k, k] /= s
        P[:k, :k] += np.outer(P[:k, k], P[k, :k])
    pi = np.zeros(n)
    pi[0] = 1.0
    for k in range(1, n):
        pi[k] = pi[:k] @ P[:k, k]
    return pi / pi.sum()


def stationary_distribution(
    chain: CTMC,
    *,
    method: str = "auto",
    tol: float = 1e-12,
    max_iter: int = 200_000,
) -> np.ndarray:
    """Stationary distribution ``π`` with ``π Q = 0``, ``Σ π = 1``.

    ``method`` is ``"gth"`` (dense, exact), ``"power"`` (sparse
    iteration) or ``"auto"`` (GTH below 2000 states).
    """
    if method not in ("auto", "gth", "power"):
        raise ParameterError(f"method must be auto|gth|power, got {method!r}")
    n = chain.num_states
    if n == 1:
        return np.array([1.0])
    if chain.absorbing_states.size:
        raise SolverError(
            "chain has absorbing states; stationary distribution is degenerate "
            "(use analyze_absorbing instead)"
        )
    if method == "auto":
        method = "gth" if n <= 2000 else "power"

    # Uniformization preserves the stationary distribution.
    P = chain.uniformized_dtmc()
    if method == "gth":
        return gth_stationary(P.toarray())

    pi = np.full(n, 1.0 / n)
    for _ in range(max_iter):
        nxt = pi @ P
        nxt = np.asarray(nxt).ravel()
        total = nxt.sum()
        if total <= 0.0 or not np.isfinite(total):
            raise SolverError("power iteration diverged")
        nxt /= total
        if np.abs(nxt - pi).max() < tol:
            return nxt
        pi = nxt
    raise ConvergenceError(
        f"power iteration did not converge within {max_iter} iterations"
    )
