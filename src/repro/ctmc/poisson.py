"""Stable truncated Poisson weights (Fox–Glynn style).

Uniformization expresses the transient distribution of a CTMC as a
Poisson mixture of DTMC powers. The weights ``e^{-λ} λ^k / k!`` underflow
for large ``λ`` when computed naively; following Fox & Glynn (1988) we
compute them in log space around the mode and truncate both tails at a
configurable mass ``ε``.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..errors import ParameterError

__all__ = ["poisson_weights", "poisson_truncation_point"]


def poisson_truncation_point(lam: float, eps: float = 1e-12) -> int:
    """Smallest ``K`` with ``P(Poisson(λ) > K) <= ε`` (conservative).

    Uses the normal approximation with a continuity cushion, then
    verifies/extends by the exact tail recurrence — cheap and safe for
    the λ ranges used here (≲ 1e7).
    """
    if lam < 0:
        raise ParameterError(f"lam must be >= 0, got {lam}")
    if not 0.0 < eps < 1.0:
        raise ParameterError(f"eps must be in (0, 1), got {eps}")
    if lam == 0.0:
        return 0
    # Start from mean + z·σ with a generous z for tiny eps.
    z = math.sqrt(max(2.0 * math.log(1.0 / eps), 1.0))
    k = int(lam + z * math.sqrt(lam) + z * z + 10.0)
    # Verify with the exact ratio bound: tail(K) <= pmf(K+1)/(1 - λ/(K+2)).
    while True:
        log_pmf = (k + 1) * math.log(lam) - lam - math.lgamma(k + 2)
        if k + 2 > lam:
            geometric_bound = log_pmf - math.log(1.0 - lam / (k + 2))
            if geometric_bound <= math.log(eps):
                return k
        k = int(k * 1.2) + 10


def poisson_weights(lam: float, eps: float = 1e-12) -> Tuple[int, int, np.ndarray]:
    """Two-sided truncated, renormalised Poisson(λ) pmf.

    Returns ``(left, right, w)`` where ``w[i]`` approximates
    ``P(Poisson(λ) = left + i)``, ``Σ w = 1`` and the discarded tail mass
    is below ``eps`` on each side.
    """
    if lam < 0:
        raise ParameterError(f"lam must be >= 0, got {lam}")
    if not 0.0 < eps < 1.0:
        raise ParameterError(f"eps must be in (0, 1), got {eps}")
    if lam == 0.0:
        return 0, 0, np.array([1.0])

    right = poisson_truncation_point(lam, eps / 2.0)
    mode = int(lam)
    # Log-pmf over 0..right via cumulative log recurrence from the mode.
    ks = np.arange(0, right + 1)
    log_pmf = ks * math.log(lam) - lam - np.array([math.lgamma(k + 1) for k in ks])
    # Left truncation: drop leading mass below eps/2.
    pmf = np.exp(log_pmf - log_pmf.max())
    pmf_sum = pmf.sum()
    cumulative = np.cumsum(pmf) / pmf_sum
    left_candidates = np.flatnonzero(cumulative >= eps / 2.0)
    left = int(left_candidates[0]) if left_candidates.size else 0
    # Keep the mode even for extreme eps.
    left = min(left, mode)
    w = pmf[left:]
    w = w / w.sum()
    return left, right, w
