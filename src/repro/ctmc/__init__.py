"""Continuous-time Markov chain (CTMC) solvers.

This subpackage is the numerical backbone of the reproduction. It
provides:

* :class:`~repro.ctmc.chain.CTMC` — a sparse finite-state CTMC container;
* :func:`~repro.ctmc.absorbing.analyze_absorbing` — mean time to
  absorption (the paper's MTTSF), absorption probabilities per failure
  class, and expected accumulated rewards (the numerator of Ĉtotal),
  solved either by an exact topological sweep when the chain is acyclic
  (:mod:`repro.ctmc.acyclic`) or by a sparse linear solve
  (:mod:`repro.ctmc.linear`);
* :func:`~repro.ctmc.transient.transient_distribution` — uniformization
  with stable Poisson weights (:mod:`repro.ctmc.poisson`);
* :func:`~repro.ctmc.stationary.stationary_distribution` — GTH
  elimination / power iteration;
* :class:`~repro.ctmc.birth_death.BirthDeathProcess` — closed-form
  birth–death chains (the group partition/merge ``NG`` model).
"""

from .absorbing import AbsorbingSolution, analyze_absorbing
from .acyclic import (
    BatchDagStructure,
    DagStructure,
    batch_dag_structure,
    solve_dag,
    solve_dag_batch,
    topological_levels,
)
from .birth_death import BirthDeathProcess
from .chain import CTMC
from .kernels import (
    KERNEL_CHOICES,
    fused_gather_enabled,
    numba_available,
    resolve_kernel,
)
from .linear import solve_linear_system
from .poisson import poisson_weights
from .stationary import stationary_distribution
from .transient import (
    BATCH_EQUIVALENCE_RTOL,
    EXPM_EQUIVALENCE_RTOL,
    TRANSIENT_BACKEND_CHOICES,
    absorption_cdf,
    absorption_cdf_batch,
    resolve_transient_backend,
    transient_distribution,
    transient_distribution_batch,
)

__all__ = [
    "CTMC",
    "AbsorbingSolution",
    "analyze_absorbing",
    "DagStructure",
    "BatchDagStructure",
    "topological_levels",
    "batch_dag_structure",
    "solve_dag",
    "solve_dag_batch",
    "solve_linear_system",
    "poisson_weights",
    "transient_distribution",
    "absorption_cdf",
    "transient_distribution_batch",
    "absorption_cdf_batch",
    "BATCH_EQUIVALENCE_RTOL",
    "EXPM_EQUIVALENCE_RTOL",
    "KERNEL_CHOICES",
    "TRANSIENT_BACKEND_CHOICES",
    "fused_gather_enabled",
    "numba_available",
    "resolve_kernel",
    "resolve_transient_backend",
    "stationary_distribution",
    "BirthDeathProcess",
]
