"""Kernel-tier selection for the batched solvers.

Three tiers drive the batched DAG sweep and the batched uniformization
matvec, all producing the same results:

* ``numpy`` — the pre-fusion (PR 4) reference path: per-``j`` row
  gathers with masked pads, COO-assembled stacked jump matrix;
* ``fused`` — the PR 5 fused-gather path: sentinel-slot gather,
  level-ordered contiguous views, pattern-permuted CSR assembly.
  Bit-identical to ``numpy`` (same IEEE operation sequence);
* ``numba`` — jitted single-pass kernels (:mod:`._numba_kernels`):
  the per-level gather → multiply–accumulate chain fuses into one
  compiled pass, parallelised over the point axis. Bit-identical to
  ``fused`` (sequential accumulation in the same slot order); requires
  the optional ``numba`` dependency (``pip install repro[kernels]``)
  and silently degrades to ``fused`` when it is absent or the jit
  fails (counted under ``solver.kernel_fallbacks`` /
  ``solver.kernel_jit_failures``).

Selection, most specific wins:

1. an explicit ``kernel=`` argument to a solver entry point;
2. an explicit legacy ``fused=`` boolean (``True`` → ``fused``,
   ``False`` → ``numpy``);
3. the ``REPRO_KERNEL`` environment variable (``numba|fused|numpy``,
   set by the CLI ``--kernel`` flag);
4. the legacy ``REPRO_FUSED_GATHER`` switch (default on → ``fused``,
   ``0/off/false`` → ``numpy``).
"""

from __future__ import annotations

import logging
import os
from typing import Optional

from ..errors import SolverError
from ..obs import metrics

__all__ = [
    "KERNEL_CHOICES",
    "fused_gather_enabled",
    "numba_available",
    "requested_kernel",
    "resolve_kernel",
]

log = logging.getLogger(__name__)

#: Recognised kernel tiers, fastest first.
KERNEL_CHOICES = ("numba", "fused", "numpy")

_NUMBA_AVAILABLE: Optional[bool] = None
_WARNED_ENV = False
_WARNED_FALLBACK = False


def fused_gather_enabled() -> bool:
    """Whether the fused-gather batch kernel is enabled (default: yes).

    ``REPRO_FUSED_GATHER=0`` selects the pre-fusion (PR 4) code path —
    same results bit-for-bit, kept for A/B benchmarking and as a
    fallback; anything else (or unset) selects the fused kernel.
    Superseded by ``REPRO_KERNEL`` when that is set.
    """
    return os.environ.get("REPRO_FUSED_GATHER", "1").strip().lower() not in (
        "0",
        "off",
        "false",
    )


def numba_available() -> bool:
    """Whether the optional ``numba`` dependency imports (cached)."""
    global _NUMBA_AVAILABLE
    if _NUMBA_AVAILABLE is None:
        try:
            import numba  # noqa: F401 — availability probe only

            _NUMBA_AVAILABLE = True
        except Exception:  # noqa: BLE001 — any import failure means "no"
            _NUMBA_AVAILABLE = False
    return _NUMBA_AVAILABLE


def requested_kernel() -> Optional[str]:
    """The ``REPRO_KERNEL`` request, or ``None`` when unset/unrecognised.

    An unrecognised value is ignored with a (one-shot) warning rather
    than raised: a typo in an environment variable must not take down a
    long campaign mid-run the way a bad CLI flag would be rejected up
    front.
    """
    global _WARNED_ENV
    raw = os.environ.get("REPRO_KERNEL")
    if raw is None:
        return None
    name = raw.strip().lower()
    if name in KERNEL_CHOICES:
        return name
    if not _WARNED_ENV:
        log.warning(
            "ignoring unrecognised REPRO_KERNEL=%r (choices: %s)",
            raw,
            "/".join(KERNEL_CHOICES),
        )
        _WARNED_ENV = True
    return None


def resolve_kernel(
    kernel: Optional[str] = None, *, fused: Optional[bool] = None
) -> str:
    """Resolve the kernel tier a solver call will actually run.

    ``kernel`` (validated — unknown names raise
    :class:`~repro.errors.SolverError`) beats the legacy ``fused``
    boolean, which beats ``REPRO_KERNEL``, which beats
    ``REPRO_FUSED_GATHER``. A ``numba`` request degrades to ``fused``
    when numba is not importable; the degradation is counted
    (``solver.kernel_fallbacks``) and logged once.
    """
    global _WARNED_FALLBACK
    if kernel is not None:
        name = kernel.strip().lower()
        if name not in KERNEL_CHOICES:
            raise SolverError(
                f"unknown kernel {kernel!r} (choices: {'/'.join(KERNEL_CHOICES)})"
            )
    elif fused is not None:
        name = "fused" if fused else "numpy"
    else:
        name = requested_kernel()
        if name is None:
            name = "fused" if fused_gather_enabled() else "numpy"
    if name == "numba" and not numba_available():
        metrics().counter("solver.kernel_fallbacks").add()
        if not _WARNED_FALLBACK:
            log.warning(
                "kernel 'numba' requested but numba is not installed; "
                "falling back to 'fused' (pip install repro[kernels])"
            )
            _WARNED_FALLBACK = True
        name = "fused"
    return name
