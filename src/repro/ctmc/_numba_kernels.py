"""Jitted (numba) kernels for the batched solvers — lazy, optional.

numba is an *optional* dependency (the ``kernels`` extra): nothing in
this module imports it at module import time, so the package imports
cleanly without it. The compiled dispatchers are built — and warmed on
tiny fixtures so type inference and machine-code generation happen
here, not mid-solve — on the first :func:`dag_sweep` /
:func:`stacked_matvec` call and cached for the life of the process.
Any failure (numba missing, unsupported platform, jit error) raises to
the caller, which falls back to the fused NumPy tier.

Both kernels reproduce the fused NumPy tier's IEEE operation sequence
exactly — sequential multiply–accumulate in CSR slot order, division
last — so their results are bit-identical to the ``fused`` (and hence
``numpy``) tiers; the differential test layer asserts this whenever
numba is importable. ``fastmath`` stays off: reassociation would break
the bit-identity contract for a few percent at best.
"""

from __future__ import annotations

import numpy as np

__all__ = ["dag_sweep", "ensure_compiled", "stacked_matvec"]

_CACHE: dict = {}


def _compile():
    """Build and warm both jitted dispatchers (raises on any failure)."""
    from numba import njit, prange

    @njit(parallel=True, cache=False)
    def _dag_sweep(
        vals_ext,
        lvl_rows,
        lvl_row_bounds,
        lvl_ell_slots,
        lvl_ell_cols,
        numerators,
        safe_q,
        absorbing,
        uniform,
        x,
    ):
        # One pass per point over the whole level schedule: levels within
        # a point are sequential (states read lower-level solutions) but
        # points are independent, so the parallel axis is the outermost
        # loop — no per-level barrier at all, unlike the NumPy tiers.
        num_points = vals_ext.shape[0]
        k = numerators.shape[2]
        width = lvl_ell_slots.shape[1]
        depth = lvl_row_bounds.shape[0] - 1
        for p in prange(num_points):
            for level in range(1, depth):
                for r in range(lvl_row_bounds[level], lvl_row_bounds[level + 1]):
                    s = lvl_rows[r]
                    if (not uniform) and absorbing[p, s]:
                        continue
                    for c in range(k):
                        # Sequential MAC in CSR slot order, first term
                        # unseeded — the exact addition sequence of the
                        # fused tier (pad slots gather the sentinel 0.0).
                        acc = (
                            vals_ext[p, lvl_ell_slots[r, 0]]
                            * x[p, lvl_ell_cols[r, 0], c]
                        )
                        for j in range(1, width):
                            acc += (
                                vals_ext[p, lvl_ell_slots[r, j]]
                                * x[p, lvl_ell_cols[r, j], c]
                            )
                        x[p, s, c] = (numerators[p, s, c] + acc) / safe_q[p, s]

    @njit(parallel=True, cache=False)
    def _stacked_matvec(block_indptr, block_indices, data, v, out):
        # Per-point CSR matvec over the shared block pattern: sequential
        # accumulation from 0.0 in stored-slot order — the same sequence
        # as scipy's csr_matvec on the stacked block-diagonal matrix.
        num_points, n = v.shape
        for p in prange(num_points):
            for i in range(n):
                acc = 0.0
                for jj in range(block_indptr[i], block_indptr[i + 1]):
                    acc += data[p, jj] * v[p, block_indices[jj]]
                out[p, i] = acc

    # Warm both dispatchers on the canonical dtypes (float64 data,
    # int64 pattern, bool masks) so the expensive first-call compile —
    # and any compile *failure* — happens here, inside the caller's
    # try/except, never mid-campaign.
    i64 = np.int64
    _dag_sweep(
        np.zeros((1, 1)),
        np.zeros(1, dtype=i64),
        np.array([0, 1], dtype=i64),
        np.zeros((1, 1), dtype=i64),
        np.zeros((1, 1), dtype=i64),
        np.zeros((1, 1, 1)),
        np.ones((1, 1)),
        np.zeros((1, 1), dtype=np.bool_),
        True,
        np.zeros((1, 1, 1)),
    )
    _stacked_matvec(
        np.array([0, 0], dtype=i64),
        np.zeros(0, dtype=i64),
        np.zeros((1, 0)),
        np.zeros((1, 1)),
        np.empty((1, 1)),
    )
    return _dag_sweep, _stacked_matvec


def _kernels():
    if "kernels" not in _CACHE:
        _CACHE["kernels"] = _compile()
    return _CACHE["kernels"]


def ensure_compiled() -> None:
    """Compile + warm both kernels now (raises when numba/jit fails)."""
    _kernels()


def dag_sweep(*args) -> None:
    """In-place jitted level sweep (see :func:`_compile` for layout)."""
    _kernels()[0](*args)


def stacked_matvec(*args) -> None:
    """Jitted stacked block-CSR matvec ``out[p] = data[p] @ v[p]``."""
    _kernels()[1](*args)
