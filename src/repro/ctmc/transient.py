"""Transient CTMC analysis by uniformization.

``π(t) = Σ_k  Pois(k; Λt) · π(0) Pᵏ`` with ``P = I + Q/Λ`` the
uniformized jump chain. Used to obtain the *distribution* of the time to
security failure (not just its mean) and for cross-validating the
absorbing-chain sweeps against an independent numerical method.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Union

import numpy as np

from ..errors import ParameterError
from .chain import CTMC
from .poisson import poisson_weights

__all__ = ["transient_distribution", "absorption_cdf"]


def transient_distribution(
    chain: CTMC,
    times: Union[float, Sequence[float]],
    initial: Union[int, np.ndarray] = 0,
    *,
    eps: float = 1e-12,
) -> np.ndarray:
    """State probability vectors at the requested ``times``.

    Returns an array of shape ``(len(times), n)`` (or ``(n,)`` for a
    scalar ``times``). Exact to truncation mass ``eps`` per time point.
    """
    scalar = np.isscalar(times)
    ts = np.atleast_1d(np.asarray(times, dtype=float))
    if np.any(ts < 0.0):
        raise ParameterError("times must be non-negative")
    pi0 = chain.validate_initial_distribution(initial)

    lam = chain.uniformization_rate()
    P = chain.uniformized_dtmc(lam)

    out = np.empty((ts.size, chain.num_states))
    order = np.argsort(ts)
    # Incremental evolution: reuse the power sequence across sorted times
    # by restarting from scratch per time point (simple and robust; the
    # figure pipelines only use a handful of time points).
    for row, ti in zip(order, ts[order]):
        if ti == 0.0:
            out[row] = pi0
            continue
        left, right, w = poisson_weights(lam * ti, eps)
        v = pi0.copy()
        acc = np.zeros_like(pi0)
        for k in range(0, right + 1):
            if k >= left:
                acc += w[k - left] * v
            if k < right:
                v = v @ P
        out[row] = acc
    # Guard against tiny negative round-off and renormalise.
    np.clip(out, 0.0, None, out=out)
    out /= out.sum(axis=1, keepdims=True)
    return out[0] if scalar else out


def absorption_cdf(
    chain: CTMC,
    times: Sequence[float],
    initial: Union[int, np.ndarray] = 0,
    *,
    classes: Optional[Mapping[str, Sequence[int]]] = None,
    eps: float = 1e-12,
) -> dict[str, np.ndarray]:
    """CDF of the absorption time, optionally split by absorbing class.

    ``result["any"][i]`` is the probability that the chain has been
    absorbed (into any absorbing state) by ``times[i]``; each named class
    gets the probability of sitting in *that* class by ``times[i]``
    (a defective CDF whose limit is the class absorption probability).
    """
    dist = transient_distribution(chain, times, initial, eps=eps)
    dist = np.atleast_2d(dist)
    absorbing = chain.absorbing_mask
    result: dict[str, np.ndarray] = {"any": dist[:, absorbing].sum(axis=1)}
    if classes:
        for name, members in classes.items():
            idx = np.asarray(list(members), dtype=int)
            if idx.size and (idx.min() < 0 or idx.max() >= chain.num_states):
                raise ParameterError(f"absorbing class {name!r} has out-of-range states")
            result[name] = dist[:, idx].sum(axis=1) if idx.size else np.zeros(dist.shape[0])
    return result
