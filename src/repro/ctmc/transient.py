"""Transient CTMC analysis by uniformization.

``π(t) = Σ_k  Pois(k; Λt) · π(0) Pᵏ`` with ``P = I + Q/Λ`` the
uniformized jump chain. Used to obtain the *distribution* of the time to
security failure (not just its mean) and for cross-validating the
absorbing-chain sweeps against an independent numerical method.

Two entry layers:

* :func:`transient_distribution` / :func:`absorption_cdf` — one
  :class:`~repro.ctmc.chain.CTMC` at a time (the historical API);
* :func:`transient_distribution_batch` / :func:`absorption_cdf_batch` —
  ``P`` chains sharing one CSR sparsity pattern (the
  :class:`~repro.core.fastpath.LatticeStructure` sweep shape), solved
  with one shared power sequence. Per point the batch uses its *own*
  uniformization rate and truncated Poisson weights, so the result is
  numerically equivalent to the per-point function; only the floating-
  point summation order differs (batched gather/reduceat vs scipy's
  matvec), which keeps the two within :data:`BATCH_EQUIVALENCE_RTOL`
  relative error on the reproduction's chains (asserted by the
  differential test layer). The batched sweep additionally reuses one
  power sequence ``π(0)Pᵏ`` for *every* requested time point, instead
  of restarting per time like the per-point loop — the dominant saving
  on time-grid survivability campaigns.
"""

from __future__ import annotations

import logging
import os
from typing import Mapping, Optional, Sequence, Union

import numpy as np

from ..errors import ParameterError, SolverError
from ..obs import metrics, span
from .chain import CTMC
from .kernels import resolve_kernel
from .poisson import poisson_weights

__all__ = [
    "BATCH_EQUIVALENCE_RTOL",
    "EXPM_EQUIVALENCE_RTOL",
    "TRANSIENT_BACKEND_CHOICES",
    "transient_distribution",
    "absorption_cdf",
    "transient_distribution_batch",
    "absorption_cdf_batch",
    "csr_row_sums",
    "resolve_transient_backend",
]

log = logging.getLogger(__name__)

#: Documented equivalence bound between the batched and per-point
#: uniformization paths: same weights, same truncation, different IEEE
#: summation order. Differential tests assert agreement to this
#: relative tolerance (probabilities additionally to ``atol=1e-12``).
BATCH_EQUIVALENCE_RTOL = 1e-9

#: Documented equivalence bound between the ``expm`` transient backend
#: (:func:`scipy.sparse.linalg.expm_multiply`, scaling-and-squaring
#: Taylor with its own internal error control) and uniformization.
#: These are *different algorithms*, not reorderings of one algorithm,
#: so the contract is a pinned tolerance, not bit-identity; the
#: differential tests assert it on the reproduction's mission grids
#: (probabilities additionally to ``atol=1e-10``).
EXPM_EQUIVALENCE_RTOL = 1e-6

#: Recognised transient solver backends. ``uniformization`` (default)
#: costs ``O(Λ·t_max)`` matvecs — exact to truncation mass ``eps`` but
#: ruinous on multi-hour grids where ``Λ ≈ 1e3/s``; ``expm`` steps the
#: stacked generator with :func:`scipy.sparse.linalg.expm_multiply`,
#: whose cost scales with the grid's *step count*, not ``Λ·t_max``.
TRANSIENT_BACKEND_CHOICES = ("uniformization", "expm")

_WARNED_BACKEND_ENV = False


def resolve_transient_backend(backend: Optional[str] = None) -> str:
    """Resolve the transient backend: explicit argument, else env.

    An explicit unknown ``backend`` raises
    :class:`~repro.errors.SolverError`; an unrecognised
    ``REPRO_TRANSIENT_BACKEND`` value is ignored with a one-shot
    warning (an env typo must not kill a campaign mid-run).
    """
    global _WARNED_BACKEND_ENV
    if backend is not None:
        name = backend.strip().lower()
        if name not in TRANSIENT_BACKEND_CHOICES:
            raise SolverError(
                f"unknown transient backend {backend!r} "
                f"(choices: {'/'.join(TRANSIENT_BACKEND_CHOICES)})"
            )
        return name
    raw = os.environ.get("REPRO_TRANSIENT_BACKEND")
    if raw is None:
        return "uniformization"
    name = raw.strip().lower()
    if name in TRANSIENT_BACKEND_CHOICES:
        return name
    if not _WARNED_BACKEND_ENV:
        log.warning(
            "ignoring unrecognised REPRO_TRANSIENT_BACKEND=%r (choices: %s)",
            raw,
            "/".join(TRANSIENT_BACKEND_CHOICES),
        )
        _WARNED_BACKEND_ENV = True
    return "uniformization"


def transient_distribution(
    chain: CTMC,
    times: Union[float, Sequence[float]],
    initial: Union[int, np.ndarray] = 0,
    *,
    eps: float = 1e-12,
) -> np.ndarray:
    """State probability vectors at the requested ``times``.

    Returns an array of shape ``(len(times), n)`` (or ``(n,)`` for a
    scalar ``times``). Exact to truncation mass ``eps`` per time point.
    """
    scalar = np.isscalar(times)
    ts = np.atleast_1d(np.asarray(times, dtype=float))
    if np.any(ts < 0.0):
        raise ParameterError("times must be non-negative")
    pi0 = chain.validate_initial_distribution(initial)

    lam = chain.uniformization_rate()
    P = chain.uniformized_dtmc(lam)

    out = np.empty((ts.size, chain.num_states))
    order = np.argsort(ts)
    # Incremental evolution: reuse the power sequence across sorted times
    # by restarting from scratch per time point (simple and robust; the
    # figure pipelines only use a handful of time points).
    for row, ti in zip(order, ts[order]):
        if ti == 0.0:
            out[row] = pi0
            continue
        left, right, w = poisson_weights(lam * ti, eps)
        v = pi0.copy()
        acc = np.zeros_like(pi0)
        for k in range(0, right + 1):
            if k >= left:
                acc += w[k - left] * v
            if k < right:
                v = v @ P
        out[row] = acc
    # Guard against tiny negative round-off and renormalise.
    np.clip(out, 0.0, None, out=out)
    out /= out.sum(axis=1, keepdims=True)
    return out[0] if scalar else out


def absorption_cdf(
    chain: CTMC,
    times: Sequence[float],
    initial: Union[int, np.ndarray] = 0,
    *,
    classes: Optional[Mapping[str, Sequence[int]]] = None,
    eps: float = 1e-12,
) -> dict[str, np.ndarray]:
    """CDF of the absorption time, optionally split by absorbing class.

    ``result["any"][i]`` is the probability that the chain has been
    absorbed (into any absorbing state) by ``times[i]``; each named class
    gets the probability of sitting in *that* class by ``times[i]``
    (a defective CDF whose limit is the class absorption probability).
    """
    dist = transient_distribution(chain, times, initial, eps=eps)
    dist = np.atleast_2d(dist)
    absorbing = chain.absorbing_mask
    result: dict[str, np.ndarray] = {"any": dist[:, absorbing].sum(axis=1)}
    if classes:
        for name, members in classes.items():
            idx = np.asarray(list(members), dtype=int)
            if idx.size and (idx.min() < 0 or idx.max() >= chain.num_states):
                raise ParameterError(
                    f"absorbing class {name!r} has out-of-range states"
                )
            result[name] = (
                dist[:, idx].sum(axis=1) if idx.size else np.zeros(dist.shape[0])
            )
    return result


# ---------------------------------------------------------------------------
# Structure-sharing batched uniformization
# ---------------------------------------------------------------------------

def _validate_pattern(
    indptr: np.ndarray, indices: np.ndarray
) -> tuple[np.ndarray, np.ndarray, int]:
    indptr = np.asarray(indptr, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int64)
    n = indptr.size - 1
    if n < 1 or indptr[0] != 0 or indptr[-1] != indices.size:
        raise SolverError("malformed CSR pattern")
    if indices.size and (indices.min() < 0 or indices.max() >= n):
        raise SolverError("CSR column indices out of range")
    return indptr, indices, n


def _stacked_jump_matrix(
    indptr: np.ndarray,
    indices: np.ndarray,
    values: np.ndarray,
    q: np.ndarray,
    lam: np.ndarray,
):
    """Block-diagonal transposed uniformized jump matrix ``diag(P_pᵀ)``.

    One scipy CSR over all ``P`` points: block ``p`` holds
    ``P_p = I + Q_p/Λ_p`` transposed, so the whole power-sequence step
    ``v_p ← v_p P_p`` for every point is a *single* ``(P·n, P·n)``
    matrix–vector product on the stacked state vector — the CSR matvec
    kernel, not a Python-level gather/reduce chain, which is what makes
    the batched sweep fast at full lattice sizes.
    """
    import scipy.sparse as sp

    num_points, n = q.shape
    deg = np.diff(indptr)
    slot_rows = np.repeat(np.arange(n, dtype=np.int64), deg)
    if indices.size and np.any(indices == slot_rows):
        raise SolverError(
            "pattern must not contain diagonal entries (self-loops have "
            "no meaning in a CTMC; the per-point path drops them)"
        )
    offsets = (np.arange(num_points, dtype=np.int64) * n)[:, None]
    diag_cols = np.arange(n, dtype=np.int64)[None, :] + offsets
    rows = np.concatenate(
        [(indices[None, :] + offsets).ravel(), diag_cols.ravel()]
    )
    cols = np.concatenate(
        [(slot_rows[None, :] + offsets).ravel(), diag_cols.ravel()]
    )
    data = np.concatenate(
        [(values / lam[:, None]).ravel(), (1.0 - q / lam[:, None]).ravel()]
    )
    size = num_points * n
    return sp.csr_matrix((data, (rows, cols)), shape=(size, size))


def _block_csr_pattern(
    indptr: np.ndarray, indices: np.ndarray, n: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Canonical CSR layout of one transposed ``n × n`` block.

    The block pattern (off-diagonal transposed slots + full diagonal)
    is a pure function of the shared sparsity pattern, so it is
    computed once per call — a lexsort of ``nnz + n`` entries — and
    reused by every point: returns ``(block_indptr, block_indices,
    perm)`` where ``perm`` maps a point's ``[values·…, diagonal·…]``
    concatenation into canonical slot order.
    """
    deg = np.diff(indptr)
    slot_rows = np.repeat(np.arange(n, dtype=np.int64), deg)
    if indices.size and np.any(indices == slot_rows):
        raise SolverError(
            "pattern must not contain diagonal entries (self-loops have "
            "no meaning in a CTMC; the per-point path drops them)"
        )
    diag = np.arange(n, dtype=np.int64)
    # Transposed block: off-diagonal entry (col j, row i) per slot.
    rows_all = np.concatenate([indices, diag])
    cols_all = np.concatenate([slot_rows, diag])
    perm = np.lexsort((cols_all, rows_all))
    block_indices = cols_all[perm]
    block_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows_all, minlength=n), out=block_indptr[1:])
    return block_indptr, block_indices, perm


def _stack_block_csr(
    block_indptr: np.ndarray,
    block_indices: np.ndarray,
    data: np.ndarray,
    n: int,
):
    """One ``(P·n, P·n)`` block-diagonal scipy CSR from per-point data.

    ``data`` is ``(P, block_nnz)`` in canonical block slot order (the
    :func:`_block_csr_pattern` permutation already applied).
    """
    import scipy.sparse as sp

    num_points, block_nnz = data.shape
    size = num_points * n
    total_nnz = num_points * block_nnz
    idx_dtype = (
        np.int32
        if max(size, total_nnz) <= np.iinfo(np.int32).max
        else np.int64
    )
    row_off = (np.arange(num_points, dtype=np.int64) * block_nnz)[:, None]
    stacked_indptr = np.empty(size + 1, dtype=idx_dtype)
    stacked_indptr[:-1] = (block_indptr[:-1][None, :] + row_off).ravel()
    stacked_indptr[-1] = total_nnz
    col_off = (np.arange(num_points, dtype=np.int64) * n)[:, None]
    stacked_indices = (block_indices[None, :] + col_off).ravel().astype(
        idx_dtype, copy=False
    )
    return sp.csr_matrix(
        (data.ravel(), stacked_indices, stacked_indptr), shape=(size, size)
    )


def _block_jump_data(
    indptr: np.ndarray,
    indices: np.ndarray,
    values: np.ndarray,
    q: np.ndarray,
    lam: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-point jump-chain data rows in canonical block slot order.

    Returns ``(block_indptr, block_indices, data)`` with ``data`` of
    shape ``(P, block_nnz)`` holding ``P_p = I + Q_p/Λ_p`` transposed —
    the exact value multiset :func:`_stacked_jump_matrix` stores, in
    the canonical order scipy's COO→CSR conversion produces.
    """
    num_points, n = q.shape
    block_indptr, block_indices, perm = _block_csr_pattern(indptr, indices, n)
    data = np.ascontiguousarray(
        np.concatenate(
            [values / lam[:, None], 1.0 - q / lam[:, None]], axis=1
        )[:, perm]
    )
    return block_indptr, block_indices, data


def _stacked_jump_matrix_fused(
    indptr: np.ndarray,
    indices: np.ndarray,
    values: np.ndarray,
    q: np.ndarray,
    lam: np.ndarray,
):
    """The same matrix as :func:`_stacked_jump_matrix`, assembled fused.

    The canonical CSR layout of one ``n × n`` block is computed once
    (:func:`_block_csr_pattern`) — a lexsort of ``nnz + n`` entries
    instead of the COO conversion's sort over the ``P``-times-larger
    stacked coordinate list — and every point's data row is one
    permuted gather. The result is the identical canonical matrix
    (same values in the same slots), so the power sequence it advances
    is bit-for-bit the legacy one.
    """
    n = q.shape[1]
    block_indptr, block_indices, data = _block_jump_data(
        indptr, indices, values, q, lam
    )
    return _stack_block_csr(block_indptr, block_indices, data, n)


def _stacked_generator_matrix(
    indptr: np.ndarray,
    indices: np.ndarray,
    values: np.ndarray,
    q: np.ndarray,
):
    """Block-diagonal transposed generator ``diag(Q_pᵀ)`` as one CSR.

    The ``expm`` backend's operator: off-diagonal rates transposed,
    ``-q`` on the diagonal, one block per point — so
    ``exp(Qᵀ·dt) @ flat`` advances every point's distribution by
    ``dt`` in a single :func:`~scipy.sparse.linalg.expm_multiply`.
    """
    num_points, n = q.shape
    block_indptr, block_indices, perm = _block_csr_pattern(indptr, indices, n)
    data = np.ascontiguousarray(
        np.concatenate([values, -q], axis=1)[:, perm]
    )
    return _stack_block_csr(block_indptr, block_indices, data, n)


def csr_row_sums(indptr: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Per-point row sums of stacked CSR value arrays.

    ``values`` is ``(P, nnz)`` over the pattern described by ``indptr``;
    returns the ``(P, n)`` out-rates. Explicit zeros contribute nothing,
    so an all-zero row marks a state that is absorbing *for that point*.
    (The batched DAG solver keeps its own bit-identity-preserving
    variant in :mod:`repro.ctmc.acyclic`; this is the plain reduction
    shared by every eps-equivalence path.)
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    values = np.asarray(values, dtype=float)
    n = indptr.size - 1
    sums = np.zeros((values.shape[0], n))
    deg = np.diff(indptr)
    nonempty = deg > 0
    starts = indptr[:-1][nonempty]
    if values.shape[1] and starts.size:
        sums[:, nonempty] = np.add.reduceat(values, starts, axis=1)
    return sums


def _batch_initial(
    initial: Union[int, np.ndarray], num_points: int, n: int
) -> np.ndarray:
    """Coerce ``initial`` (index, ``(n,)`` or ``(P, n)``) to ``(P, n)``."""
    if isinstance(initial, (int, np.integer)) and not isinstance(initial, bool):
        if not 0 <= int(initial) < n:
            raise ParameterError(f"initial state {initial} out of range")
        pi0 = np.zeros((num_points, n))
        pi0[:, int(initial)] = 1.0
        return pi0
    dist = np.asarray(initial, dtype=float)
    if dist.shape == (n,):
        dist = np.broadcast_to(dist, (num_points, n))
    if dist.shape != (num_points, n):
        raise ParameterError(
            f"initial must be a state index, ({n},) or ({num_points}, {n}) "
            f"distribution(s), got shape {np.shape(initial)}"
        )
    sums = dist.sum(axis=1)
    if np.any(dist < -1e-12) or not np.allclose(sums, 1.0, atol=1e-9):
        raise ParameterError("initial distributions must be non-negative and sum to 1")
    return np.clip(dist, 0.0, None) / sums[:, None]


def _transient_batch_expm(
    indptr: np.ndarray,
    indices: np.ndarray,
    values: np.ndarray,
    q: np.ndarray,
    ts: np.ndarray,
    pi0: np.ndarray,
) -> tuple[np.ndarray, int]:
    """Advance every point's distribution with ``expm_multiply`` steps.

    The time grid is visited in sorted order and each step evolves the
    stacked state vector by the *increment* ``exp(Qᵀ·dt)``, so the
    whole grid costs one Krylov-free ``expm_multiply`` per distinct
    positive step — independent of ``Λ·t_max``, which is what makes
    multi-hour mission grids affordable (uniformization pays
    ``Λ·t_max`` matvecs regardless of how few grid points there are).
    Returns ``(out, steps)`` with ``out`` of shape ``(P, T, n)``.
    """
    from scipy.sparse.linalg import expm_multiply

    num_points, n = pi0.shape
    gen_t = _stacked_generator_matrix(indptr, indices, values, q)
    out = np.empty((num_points, ts.size, n))
    flat = pi0.reshape(-1).copy()
    prev = 0.0
    steps = 0
    for ti in np.argsort(ts, kind="stable"):
        dt = float(ts[ti] - prev)
        if dt > 0.0:
            flat = expm_multiply(gen_t * dt, flat)
            prev = float(ts[ti])
            steps += 1
        out[:, ti, :] = flat.reshape(num_points, n)
    return out, steps


def transient_distribution_batch(
    indptr: np.ndarray,
    indices: np.ndarray,
    values: np.ndarray,
    times: Union[float, Sequence[float]],
    initial: Union[int, np.ndarray] = 0,
    *,
    eps: float = 1e-12,
    fused: Optional[bool] = None,
    kernel: Optional[str] = None,
    backend: Optional[str] = None,
) -> np.ndarray:
    """State probability vectors for ``P`` rate fills of one pattern.

    Parameters
    ----------
    indptr, indices:
        Shared CSR sparsity pattern (e.g.
        :attr:`repro.core.fastpath.LatticeStructure.indptr` /
        ``.indices``). Explicit zeros in ``values`` are allowed — a
        state whose row sums to zero is absorbing *for that point*,
        exactly as if the slot were absent.
    values:
        ``(P, nnz)`` non-negative transition rates, one row per point.
    times:
        Scalar or sequence of non-negative times (shared by all points).
    initial:
        State index, one ``(n,)`` distribution shared by all points, or
        ``(P, n)`` per-point distributions.

    Returns
    -------
    ``(P, len(times), n)`` array (``(P, n)`` for scalar ``times``) of
    state distributions, numerically equivalent to calling
    :func:`transient_distribution` per point (each point keeps its own
    uniformization rate ``Λ_p = max_i q_i^p`` and its own truncated
    Poisson weights; see :data:`BATCH_EQUIVALENCE_RTOL`). One shared
    power sequence serves every requested time point.

    ``kernel`` (``"numba"``/``"fused"``/``"numpy"``; ``None`` follows
    ``REPRO_KERNEL`` then the legacy ``fused``/``REPRO_FUSED_GATHER``
    switches — see :func:`repro.ctmc.kernels.resolve_kernel`) selects
    the power-sequence matvec tier. ``fused`` assembles the stacked
    jump matrix from a once-per-call pattern permutation instead of a
    ``P``-times-larger COO sort and accumulates Poisson windows over a
    time-major layout whose per-time slices are contiguous; ``numba``
    replaces the scipy matvec with a jitted per-block CSR matvec
    (parallel over points) whose sequential slot-order accumulation is
    the exact scipy sequence. All three tiers produce the identical
    matrix values and the identical addition sequence, so results are
    equal bit-for-bit across tiers (and all stay within
    :data:`BATCH_EQUIVALENCE_RTOL` of the per-point path).

    ``backend`` (``"uniformization"``/``"expm"``; ``None`` follows
    ``REPRO_TRANSIENT_BACKEND``, default uniformization) swaps the
    algorithm itself: ``expm`` advances the stacked generator with
    :func:`scipy.sparse.linalg.expm_multiply` increments over the
    sorted time grid — ``O(steps)`` instead of ``O(Λ·t_max)``, the
    multi-hour-grid escape hatch — and agrees with uniformization to
    :data:`EXPM_EQUIVALENCE_RTOL` (a pinned tolerance, not
    bit-identity: it is a different algorithm). ``eps`` and ``kernel``
    only affect the uniformization backend.
    """
    indptr, indices, n = _validate_pattern(indptr, indices)
    values = np.asarray(values, dtype=float)
    if values.ndim != 2 or values.shape[1] != indices.size:
        raise SolverError(
            f"values must have shape (P, {indices.size}), got {values.shape}"
        )
    if values.size and (not np.all(np.isfinite(values)) or values.min() < 0.0):
        raise ParameterError("transition rates must be finite and non-negative")
    num_points = values.shape[0]

    scalar = np.isscalar(times)
    ts = np.atleast_1d(np.asarray(times, dtype=float))
    if np.any(ts < 0.0):
        raise ParameterError("times must be non-negative")
    num_times = ts.size

    pi0 = _batch_initial(initial, num_points, n)
    if num_points == 0 or num_times == 0:
        empty = np.zeros((num_points, num_times, n))
        return empty[:, 0, :] if scalar else empty

    q = csr_row_sums(indptr, values)

    backend_name = resolve_transient_backend(backend)
    if backend_name == "expm":
        kernel_name = resolve_kernel(kernel, fused=fused)
        with span(
            "transient_batch",
            points=num_points,
            times=num_times,
            kernel=kernel_name,
            backend="expm",
        ):
            out, steps = _transient_batch_expm(
                indptr, indices, values, q, ts, pi0
            )
        registry = metrics()
        registry.counter("solver.transient_batch_solves").add()
        registry.counter("solver.transient_points_solved").add(num_points)
        registry.counter("solver.expm_steps").add(steps)
        np.clip(out, 0.0, None, out=out)
        out /= out.sum(axis=2, keepdims=True)
        return out[:, 0, :] if scalar else out

    # Uniformization constants (Λ_p ≥ max q_i, strictly positive even
    # for an all-absorbing fill — matching ``CTMC.uniformization_rate``).
    lam = q.max(axis=1)
    lam[lam <= 0.0] = 1.0

    # Per-(point, time) truncated Poisson windows, padded per time point
    # into one (P, window) weight block so step k accumulates with a
    # single vectorised multiply per active time.
    windows: list[tuple[int, int, np.ndarray]] = []
    for ti in range(num_times):
        if ts[ti] == 0.0:
            windows.append((0, 0, np.ones((num_points, 1))))
            continue
        lefts = np.empty(num_points, dtype=np.int64)
        rights = np.empty(num_points, dtype=np.int64)
        weights: list[np.ndarray] = []
        for p in range(num_points):
            left, right, w = poisson_weights(float(lam[p] * ts[ti]), eps)
            lefts[p], rights[p] = left, right
            weights.append(w)
        lo, hi = int(lefts.min()), int(rights.max())
        block = np.zeros((num_points, hi - lo + 1))
        for p, w in enumerate(weights):
            block[p, lefts[p] - lo : rights[p] + 1 - lo] = w
        windows.append((lo, hi, block))
    k_max = max(hi for _, hi, _ in windows)

    # Shared power sequence: v_k = π(0) P_pᵏ per point. All points
    # advance with one stacked CSR matvec per step (block-diagonal
    # transposed jump matrices — see :func:`_stacked_jump_matrix`),
    # or with the jitted per-block matvec on the ``numba`` tier.
    kernel_name = resolve_kernel(kernel, fused=fused)
    matvec = None
    if kernel_name == "numba":
        try:
            from ._numba_kernels import ensure_compiled, stacked_matvec

            ensure_compiled()
            matvec = stacked_matvec
        except Exception:  # noqa: BLE001 — jit failure must not kill a solve
            metrics().counter("solver.kernel_jit_failures").add()
            kernel_name = "fused"
    if matvec is not None:
        block_indptr, block_indices, block_data = _block_jump_data(
            indptr, indices, values, q, lam
        )
        jump_t = None
    else:
        build = (
            _stacked_jump_matrix_fused
            if kernel_name == "fused"
            else _stacked_jump_matrix
        )
        jump_t = build(indptr, indices, values, q, lam)

    flat = pi0.ravel().copy()
    with span(
        "transient_batch",
        points=num_points,
        times=num_times,
        steps=k_max + 1,
        kernel=kernel_name,
        backend="uniformization",
    ):
        if kernel_name == "numpy":
            out = np.zeros((num_points, num_times, n))
            for k in range(k_max + 1):
                v = flat.reshape(num_points, n)
                for ti, (lo, hi, block) in enumerate(windows):
                    if lo <= k <= hi:
                        out[:, ti, :] += block[:, k - lo, None] * v
                if k == k_max:
                    break
                flat = jump_t @ flat
        else:
            # Time-major accumulator: out_t[ti] is a contiguous (P, n)
            # block, so the per-step weight accumulation writes
            # unit-stride memory instead of the (P, T, n) layout's
            # strided slices. Same additions in the same order —
            # transposed back at the end. Shared by the fused and numba
            # tiers, whose matvecs produce bit-equal sequences.
            los = np.array([lo for lo, _, _ in windows], dtype=np.int64)
            his = np.array([hi for _, hi, _ in windows], dtype=np.int64)
            blocks_t = [
                np.ascontiguousarray(block.T) for _, _, block in windows
            ]
            out_t = np.zeros((num_times, num_points, n))
            v = flat.reshape(num_points, n)
            for k in range(k_max + 1):
                active = np.flatnonzero((los <= k) & (k <= his))
                for ti in active:
                    out_t[ti] += blocks_t[ti][k - los[ti]][:, None] * v
                if k == k_max:
                    break
                if matvec is not None:
                    nxt = np.empty_like(v)
                    matvec(block_indptr, block_indices, block_data, v, nxt)
                    v = nxt
                else:
                    v = (jump_t @ v.reshape(-1)).reshape(num_points, n)
            out = np.ascontiguousarray(out_t.transpose(1, 0, 2))
    registry = metrics()
    registry.counter("solver.transient_batch_solves").add()
    registry.counter("solver.transient_points_solved").add(num_points)
    registry.counter("solver.uniformization_steps").add(k_max + 1)

    # Guard against tiny negative round-off and renormalise (mirror of
    # the per-point epilogue).
    np.clip(out, 0.0, None, out=out)
    out /= out.sum(axis=2, keepdims=True)
    return out[:, 0, :] if scalar else out


def absorption_cdf_batch(
    indptr: np.ndarray,
    indices: np.ndarray,
    values: np.ndarray,
    times: Sequence[float],
    initial: Union[int, np.ndarray] = 0,
    *,
    classes: Optional[Mapping[str, Sequence[int]]] = None,
    eps: float = 1e-12,
    kernel: Optional[str] = None,
    backend: Optional[str] = None,
) -> dict[str, np.ndarray]:
    """Absorption-time CDFs for ``P`` rate fills of one pattern.

    The batched counterpart of :func:`absorption_cdf`:
    ``result["any"][p, i]`` is point ``p``'s probability of having been
    absorbed by ``times[i]`` (absorbing = zero out-rate *for that
    point*), and each named class gets its defective CDF. All arrays
    have shape ``(P, len(times))``.
    """
    dist = transient_distribution_batch(
        indptr,
        indices,
        values,
        np.asarray(times, dtype=float),
        initial,
        eps=eps,
        kernel=kernel,
        backend=backend,
    )
    indptr = np.asarray(indptr, dtype=np.int64)
    n = indptr.size - 1
    absorbing = csr_row_sums(indptr, values) == 0.0

    result: dict[str, np.ndarray] = {
        "any": (dist * absorbing[:, None, :]).sum(axis=2)
    }
    if classes:
        for name, members in classes.items():
            idx = np.asarray(list(members), dtype=int)
            if idx.size and (idx.min() < 0 or idx.max() >= n):
                raise ParameterError(
                    f"absorbing class {name!r} has out-of-range states"
                )
            result[name] = (
                dist[:, :, idx].sum(axis=2)
                if idx.size
                else np.zeros(dist.shape[:2])
            )
    return result
