"""Level-dependent birth–death chains.

The paper models the number of concurrent mobile groups ``NG`` as a
birth–death process — birth = group partition, death = group merge — with
rates obtained from mobility simulation. This module provides the
closed-form stationary distribution (detailed balance, computed in log
space), moments, and conversion to a full :class:`~repro.ctmc.chain.CTMC`
for cross-validation.
"""

from __future__ import annotations

from typing import Callable, Sequence, Union

import numpy as np

from ..errors import ParameterError
from ..validation import require_positive_int
from .chain import CTMC

__all__ = ["BirthDeathProcess"]

RateSpec = Union[Sequence[float], Callable[[int], float]]


class BirthDeathProcess:
    """A finite birth–death CTMC on levels ``lo..hi``.

    Parameters
    ----------
    lo, hi:
        Inclusive level bounds (e.g. 1..max_groups for ``NG``).
    birth:
        Birth rate per level: a callable ``level -> rate`` or a sequence
        of ``hi - lo`` rates for levels ``lo..hi-1``.
    death:
        Death rate per level: callable or sequence of ``hi - lo`` rates
        for levels ``lo+1..hi``. All death rates must be positive;
        birth rates may be zero (truncation).
    """

    def __init__(self, lo: int, hi: int, birth: RateSpec, death: RateSpec) -> None:
        if lo > hi:
            raise ParameterError(f"lo ({lo}) must be <= hi ({hi})")
        self._lo = int(lo)
        self._hi = int(hi)
        levels_up = range(self._lo, self._hi)  # transitions level -> level+1
        levels_down = range(self._lo + 1, self._hi + 1)  # level -> level-1
        self._birth = self._materialise("birth", birth, levels_up)
        self._death = self._materialise("death", death, levels_down)
        if np.any(self._birth < 0.0):
            raise ParameterError("birth rates must be non-negative")
        if np.any(self._death <= 0.0) and self.num_levels > 1:
            raise ParameterError("death rates must be positive")

    @staticmethod
    def _materialise(name: str, spec: RateSpec, levels: range) -> np.ndarray:
        if callable(spec):
            vals = np.array([float(spec(level)) for level in levels])
        else:
            vals = np.asarray(list(spec), dtype=float)
            if vals.shape != (len(levels),):
                raise ParameterError(
                    f"{name} rates must have length {len(levels)}, got {vals.shape}"
                )
        if not np.all(np.isfinite(vals)):
            raise ParameterError(f"{name} rates must be finite")
        return vals

    # ------------------------------------------------------------------
    @classmethod
    def for_group_count(
        cls,
        partition_rate_hz: float,
        merge_rate_hz: float,
        max_groups: int,
        *,
        scale_with_level: bool = True,
    ) -> "BirthDeathProcess":
        """The ``NG`` model: levels ``1..max_groups``.

        With ``scale_with_level`` (default) each existing group may
        partition (birth rate ``ν_p · g``) and each *extra* group may
        merge back (death rate ``ν_m · (g - 1)``), matching the intuition
        that more groups give more opportunities for both events.
        """
        require_positive_int("max_groups", max_groups)
        if partition_rate_hz < 0.0:
            raise ParameterError("partition_rate_hz must be >= 0")
        if merge_rate_hz <= 0.0 and max_groups > 1:
            raise ParameterError("merge_rate_hz must be > 0")
        if scale_with_level:
            birth = lambda g: partition_rate_hz * g  # noqa: E731
            death = lambda g: merge_rate_hz * (g - 1)  # noqa: E731
        else:
            birth = lambda g: partition_rate_hz  # noqa: E731
            death = lambda g: merge_rate_hz  # noqa: E731
        return cls(1, int(max_groups), birth, death)

    # ------------------------------------------------------------------
    @property
    def lo(self) -> int:
        return self._lo

    @property
    def hi(self) -> int:
        return self._hi

    @property
    def num_levels(self) -> int:
        return self._hi - self._lo + 1

    @property
    def levels(self) -> np.ndarray:
        """Array of level values ``lo..hi``."""
        return np.arange(self._lo, self._hi + 1)

    def birth_rate(self, level: int) -> float:
        """Birth rate out of ``level`` (0 at the top level)."""
        if not self._lo <= level <= self._hi:
            raise ParameterError(f"level {level} outside [{self._lo}, {self._hi}]")
        return float(self._birth[level - self._lo]) if level < self._hi else 0.0

    def death_rate(self, level: int) -> float:
        """Death rate out of ``level`` (0 at the bottom level)."""
        if not self._lo <= level <= self._hi:
            raise ParameterError(f"level {level} outside [{self._lo}, {self._hi}]")
        return float(self._death[level - self._lo - 1]) if level > self._lo else 0.0

    # ------------------------------------------------------------------
    def stationary_distribution(self) -> np.ndarray:
        """Exact stationary distribution by detailed balance.

        ``π_{k+1}/π_k = birth_k / death_{k+1}``, accumulated in log space
        to avoid overflow on long chains.
        """
        n = self.num_levels
        if n == 1:
            return np.array([1.0])
        with np.errstate(divide="ignore"):
            log_ratios = np.log(self._birth) - np.log(self._death)
        log_pi = np.concatenate([[0.0], np.cumsum(log_ratios)])
        # Levels beyond a zero birth rate get -inf ⇒ probability 0.
        log_pi -= log_pi.max()
        pi = np.exp(log_pi)
        return pi / pi.sum()

    def mean_level(self) -> float:
        """Stationary mean of the level (e.g. E[number of groups])."""
        return float(self.stationary_distribution() @ self.levels)

    def level_distribution(self) -> dict[int, float]:
        """Stationary distribution keyed by level value."""
        pi = self.stationary_distribution()
        return {int(level): float(p) for level, p in zip(self.levels, pi)}

    def to_ctmc(self) -> CTMC:
        """Export as a dense :class:`CTMC` (for cross-validation)."""
        n = self.num_levels
        transitions = []
        for i in range(n - 1):
            if self._birth[i] > 0.0:
                transitions.append((i, i + 1, float(self._birth[i])))
            transitions.append((i + 1, i, float(self._death[i])))
        return CTMC.from_transitions(n, transitions, labels=list(self.levels))

    def __repr__(self) -> str:  # pragma: no cover
        return f"BirthDeathProcess(levels={self._lo}..{self._hi})"
