"""Absorbing-chain analysis: MTTA, absorption classes, accumulated rewards.

This module hosts :func:`analyze_absorbing`, the single entry point used
by the GCS model to obtain

* **MTTSF** — mean time to absorption from the initial marking,
* **failure-mode split** — probability of absorbing into each failure
  class (paper conditions C1 / C2, plus the depletion corner case),
* **Ĉtotal numerator** — expected accumulated reward until absorption
  for any number of per-state reward-rate vectors,

all from one factorisation/sweep. The solver is chosen automatically:
an exact O(nnz) topological sweep when the chain is acyclic (the default
GCS security model — see DESIGN.md §3.1), sparse LU otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Union

import numpy as np

from ..errors import NotAbsorbingError, ParameterError, SolverError
from .acyclic import solve_dag, topological_levels
from .chain import CTMC
from .linear import solve_linear_system

__all__ = ["AbsorbingSolution", "analyze_absorbing"]


@dataclass(frozen=True)
class AbsorbingSolution:
    """Result bundle of :func:`analyze_absorbing`.

    All per-state arrays are indexed by the *original* chain's state
    numbering (states that were unreachable from the initial
    distribution hold ``NaN``).
    """

    #: Solver actually used: ``"acyclic"`` or ``"linear"``.
    method: str
    #: Initial distribution the scalar summaries integrate over.
    initial_distribution: np.ndarray
    #: Per-state expected time to absorption ``τ_s``.
    tau: np.ndarray
    #: Per-state expected accumulated reward until absorption, by name.
    accumulated: Mapping[str, np.ndarray] = field(default_factory=dict)
    #: Per-state absorption probability into each named class.
    absorption: Mapping[str, np.ndarray] = field(default_factory=dict)
    #: Per-state second moment E[T²] of the absorption time (only when
    #: requested via ``second_moment=True``).
    tau_second_moment: Optional[np.ndarray] = None

    @property
    def mtta(self) -> float:
        """Mean time to absorption from the initial distribution."""
        return float(np.nansum(self.initial_distribution * self.tau))

    @property
    def mtta_variance(self) -> float:
        """Exact variance of the absorption time from the initial
        distribution (requires ``second_moment=True``).

        For a mixture over initial states, ``Var[T] = E[E[T²|s]] -
        (E[E[T|s]])²`` — the mixture's variance, not the mean of the
        per-state variances.
        """
        if self.tau_second_moment is None:
            raise ParameterError(
                "second moment not computed; pass second_moment=True to analyze_absorbing"
            )
        m2 = float(np.nansum(self.initial_distribution * self.tau_second_moment))
        return max(m2 - self.mtta**2, 0.0)

    @property
    def mtta_std(self) -> float:
        """Standard deviation of the absorption time."""
        return float(np.sqrt(self.mtta_variance))

    def expected_reward(self, name: str) -> float:
        """Expected accumulated reward ``name`` from the initial
        distribution."""
        if name not in self.accumulated:
            raise ParameterError(
                f"unknown reward {name!r}; have {sorted(self.accumulated)}"
            )
        return float(np.nansum(self.initial_distribution * self.accumulated[name]))

    def absorption_probability(self, name: str) -> float:
        """Probability of absorbing into class ``name`` from the initial
        distribution."""
        if name not in self.absorption:
            raise ParameterError(
                f"unknown absorption class {name!r}; "
                f"have {sorted(self.absorption)}"
            )
        return float(np.nansum(self.initial_distribution * self.absorption[name]))

    def lifetime_average(self, name: str) -> float:
        """Lifetime-averaged reward rate: accumulated / MTTA.

        This is exactly the paper's Ĉtotal construction (accumulated
        communication cost over the system lifetime divided by MTTSF).
        """
        mtta = self.mtta
        if mtta <= 0.0:
            raise SolverError("lifetime average undefined: MTTA is zero")
        return self.expected_reward(name) / mtta


def analyze_absorbing(
    chain: CTMC,
    *,
    initial: Union[int, np.ndarray] = 0,
    rewards: Optional[Mapping[str, np.ndarray]] = None,
    absorbing_classes: Optional[Mapping[str, Sequence[int]]] = None,
    method: str = "auto",
    second_moment: bool = False,
) -> AbsorbingSolution:
    """Analyze an absorbing CTMC.

    Parameters
    ----------
    chain:
        The chain. Absorption must be almost-sure from every state
        reachable from ``initial`` (checked; raises
        :class:`~repro.errors.NotAbsorbingError` otherwise).
    initial:
        Initial state index or probability vector.
    rewards:
        Named per-state reward *rates* (length ``n``). For each, the
        expected accumulated reward until absorption is computed.
    absorbing_classes:
        Named groups of absorbing state indices. Defaults to one class
        ``"absorbed"`` covering every absorbing state. Classes may
        overlap; they need not cover all absorbing states.
    method:
        ``"auto"`` (topological sweep when acyclic, else LU),
        ``"acyclic"`` (error when cyclic) or ``"linear"``.
    second_moment:
        Also compute the exact second moment of the absorption time via
        the recurrence ``M2_s = (2 τ_s + Σ_j R_sj M2_j) / q_s`` (one
        extra solve, since the numerator depends on the hitting times).
    """
    if method not in ("auto", "acyclic", "linear"):
        raise ParameterError(f"method must be auto|acyclic|linear, got {method!r}")
    init = chain.validate_initial_distribution(initial)
    rewards = dict(rewards or {})
    for name, vec in rewards.items():
        arr = np.asarray(vec, dtype=float)
        if arr.shape != (chain.num_states,):
            raise ParameterError(
                f"reward {name!r} has shape {arr.shape}, expected ({chain.num_states},)"
            )
        rewards[name] = arr

    n = chain.num_states
    absorbing_idx = chain.absorbing_states
    if absorbing_idx.size == 0:
        raise NotAbsorbingError("chain has no absorbing states")

    if absorbing_classes is None:
        absorbing_classes = {"absorbed": absorbing_idx.tolist()}
    class_members: dict[str, np.ndarray] = {}
    absorbing_set = set(int(i) for i in absorbing_idx)
    for name, members in absorbing_classes.items():
        arr = np.unique(np.asarray(list(members), dtype=int))
        for s in arr:
            if int(s) not in absorbing_set:
                raise ParameterError(
                    f"absorbing class {name!r} contains non-absorbing state {int(s)}"
                )
        class_members[name] = arr

    # --- restrict to the reachable set; verify almost-sure absorption ---
    reach = chain.reachable_from(np.flatnonzero(init > 0.0))
    sub, idx_map = chain.subchain(reach)
    can_absorb = (
        sub.can_reach(sub.absorbing_states) if sub.absorbing_states.size else None
    )
    if can_absorb is None or not np.all(can_absorb):
        raise NotAbsorbingError(
            "absorption is not almost-sure from the initial distribution"
        )

    # --- assemble the multi-column boundary-value problem ---
    # column 0: hitting time; then rewards; then absorption classes.
    reward_names = list(rewards)
    class_names = list(class_members)
    k = 1 + len(reward_names) + len(class_names)
    nn = sub.num_states
    numer = np.zeros((nn, k))
    bound = np.zeros((nn, k))

    transient_mask = ~sub.absorbing_mask
    numer[transient_mask, 0] = 1.0
    # Map original-index data onto the subchain.
    for c, name in enumerate(reward_names, start=1):
        numer[:, c] = rewards[name][idx_map]
        numer[~transient_mask, c] = 0.0
    orig_to_sub = {int(orig): s for s, orig in enumerate(idx_map)}
    for c, name in enumerate(class_names, start=1 + len(reward_names)):
        for orig in class_members[name]:
            s = orig_to_sub.get(int(orig))
            if s is not None:
                bound[s, c] = 1.0

    # --- choose solver ---
    structure = None
    if method in ("auto", "acyclic"):
        structure = topological_levels(sub)
        if structure is None and method == "acyclic":
            raise SolverError("chain is cyclic; acyclic method not applicable")
    if structure is not None and method != "linear":
        x = solve_dag(sub, structure, numer, bound)
        used = "acyclic"
    else:
        x = solve_linear_system(sub, numer, bound)
        used = "linear"

    # --- optional second moment of the absorption time ---
    m2_sub: Optional[np.ndarray] = None
    if second_moment:
        m2_numer = np.where(transient_mask, 2.0 * x[:, 0], 0.0)
        m2_bound = np.zeros(nn)
        if used == "acyclic":
            m2_sub = solve_dag(sub, structure, m2_numer, m2_bound)
        else:
            m2_sub = solve_linear_system(sub, m2_numer, m2_bound)

    # --- scatter back to original indexing ---
    def expand(col: np.ndarray) -> np.ndarray:
        out = np.full(n, np.nan)
        out[idx_map] = col
        return out

    tau = expand(x[:, 0])
    accumulated = {
        name: expand(x[:, 1 + i]) for i, name in enumerate(reward_names)
    }
    absorption = {
        name: expand(x[:, 1 + len(reward_names) + i])
        for i, name in enumerate(class_names)
    }

    return AbsorbingSolution(
        method=used,
        initial_distribution=init,
        tau=tau,
        accumulated=accumulated,
        absorption=absorption,
        tau_second_moment=expand(m2_sub) if m2_sub is not None else None,
    )
