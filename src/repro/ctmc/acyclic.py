"""Exact absorbing-chain analysis for acyclic (DAG) CTMCs.

The security chain of the GCS model is a DAG: every transition strictly
decreases the marking in a lexicographic order (DESIGN.md §3.1), so the
linear system

.. math:: (\\operatorname{diag}(q) - R)\\,x = b

is — after a topological permutation — upper triangular and solvable by a
single backward sweep. We implement the sweep with *level scheduling*:
states are grouped by longest-path distance to an absorbing state, and
each level is processed with one vectorised sparse row-slice matvec, so
the whole solve is ``O(nnz)`` with only ``O(depth)`` Python-level
iterations (a few hundred for the N=100 model).

The boundary-value formulation used throughout: for absorbing states the
solution value is *prescribed* (0 for hitting times, 1/0 for absorption
indicator probabilities), and for transient states

.. math:: x_s = \\frac{b_s + \\sum_j R_{sj}\\,x_j}{q_s}.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import SolverError
from .chain import CTMC

__all__ = ["DagStructure", "topological_levels", "solve_dag"]


@dataclass(frozen=True)
class DagStructure:
    """Topological level assignment of a DAG chain.

    ``levels[i]`` is the longest-path distance (in transitions) from
    state ``i`` to an absorbing state; absorbing states have level 0.
    ``level_states[L]`` lists the states at level ``L``.
    """

    levels: np.ndarray
    level_states: list[np.ndarray]

    @property
    def depth(self) -> int:
        """Number of levels (1 for an all-absorbing chain)."""
        return len(self.level_states)


def topological_levels(chain: CTMC) -> Optional[DagStructure]:
    """Compute topological levels of ``chain``, or ``None`` if cyclic.

    Kahn's algorithm on out-degrees: states whose successors are all
    finalised are peeled off level by level. If a cycle exists some
    states are never peeled and ``None`` is returned (callers fall back
    to the general linear solver).
    """
    R = chain.rates
    n = chain.num_states
    remaining = np.diff(R.indptr).astype(np.int64)  # out-degree per state
    levels = np.zeros(n, dtype=np.int64)
    Rcsc = R.tocsc()
    pred_indptr, pred_indices = Rcsc.indptr, Rcsc.indices

    ready = [int(s) for s in np.flatnonzero(remaining == 0)]
    processed = 0
    # Longest-path levels: a predecessor's level is 1 + max over successors.
    while ready:
        v = ready.pop()
        processed += 1
        lv = levels[v] + 1
        for u in pred_indices[pred_indptr[v] : pred_indptr[v + 1]]:
            if levels[u] < lv:
                levels[u] = lv
            remaining[u] -= 1
            if remaining[u] == 0:
                ready.append(int(u))
    if processed != n:
        return None

    depth = int(levels.max()) + 1 if n else 0
    order = np.argsort(levels, kind="stable")
    sorted_levels = levels[order]
    boundaries = np.searchsorted(sorted_levels, np.arange(depth + 1))
    level_states = [order[boundaries[L] : boundaries[L + 1]] for L in range(depth)]
    return DagStructure(levels=levels, level_states=level_states)


def solve_dag(
    chain: CTMC,
    structure: DagStructure,
    numerators: np.ndarray,
    boundary: np.ndarray,
) -> np.ndarray:
    """Solve the boundary-value recurrence on a DAG chain.

    Parameters
    ----------
    chain:
        The chain (must be the one ``structure`` was computed from).
    structure:
        Output of :func:`topological_levels`.
    numerators:
        ``(n,)`` or ``(n, k)`` array ``b`` of per-state numerators
        (reward rates); values at absorbing states are ignored.
    boundary:
        ``(n,)`` or ``(n, k)`` array of prescribed values at absorbing
        states; values at transient states are ignored.

    Returns
    -------
    ``(n,)`` or ``(n, k)`` array ``x`` with ``x = boundary`` on absorbing
    states and ``x_s = (b_s + Σ_j R_sj x_j) / q_s`` on transient states.
    """
    R = chain.rates
    q = chain.out_rates
    n = chain.num_states

    b = np.asarray(numerators, dtype=float)
    g = np.asarray(boundary, dtype=float)
    squeeze = b.ndim == 1
    if b.ndim == 1:
        b = b[:, None]
    if g.ndim == 1:
        g = g[:, None]
    if b.shape[0] != n or g.shape[0] != n:
        raise SolverError(
            f"numerators/boundary first dimension must be {n}, got {b.shape[0]}/{g.shape[0]}"
        )
    if g.shape[1] != b.shape[1]:
        raise SolverError("numerators and boundary must have matching column counts")

    x = np.zeros_like(b)
    absorbing = chain.absorbing_mask
    x[absorbing] = g[absorbing]

    # Level 0 is exactly the absorbing set (out-degree zero ⇒ q == 0).
    for rows in structure.level_states[1:]:
        contrib = R[rows, :] @ x  # successors are all in lower levels: final
        x[rows] = (b[rows] + contrib) / q[rows, None]

    return x[:, 0] if squeeze else x
