"""Exact absorbing-chain analysis for acyclic (DAG) CTMCs.

The security chain of the GCS model is a DAG: every transition strictly
decreases the marking in a lexicographic order (DESIGN.md §3.1), so the
linear system

.. math:: (\\operatorname{diag}(q) - R)\\,x = b

is — after a topological permutation — upper triangular and solvable by a
single backward sweep. We implement the sweep with *level scheduling*:
states are grouped by longest-path distance to an absorbing state, and
each level is processed with one vectorised sparse row-slice matvec, so
the whole solve is ``O(nnz)`` with only ``O(depth)`` Python-level
iterations (a few hundred for the N=100 model).

The boundary-value formulation used throughout: for absorbing states the
solution value is *prescribed* (0 for hitting times, 1/0 for absorption
indicator probabilities), and for transient states

.. math:: x_s = \\frac{b_s + \\sum_j R_{sj}\\,x_j}{q_s}.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import SolverError
from ..obs import metrics, span
from .chain import CTMC
from .kernels import fused_gather_enabled, resolve_kernel

__all__ = [
    "DagStructure",
    "topological_levels",
    "solve_dag",
    "BatchDagStructure",
    "batch_dag_structure",
    "solve_dag_batch",
    "fused_gather_enabled",
]


@dataclass(frozen=True)
class DagStructure:
    """Topological level assignment of a DAG chain.

    ``levels[i]`` is the longest-path distance (in transitions) from
    state ``i`` to an absorbing state; absorbing states have level 0.
    ``level_states[L]`` lists the states at level ``L``.
    """

    levels: np.ndarray
    level_states: list[np.ndarray]

    @property
    def depth(self) -> int:
        """Number of levels (1 for an all-absorbing chain)."""
        return len(self.level_states)


def topological_levels(chain: CTMC) -> Optional[DagStructure]:
    """Compute topological levels of ``chain``, or ``None`` if cyclic.

    Kahn's algorithm on out-degrees: states whose successors are all
    finalised are peeled off level by level. If a cycle exists some
    states are never peeled and ``None`` is returned (callers fall back
    to the general linear solver).
    """
    R = chain.rates
    n = chain.num_states
    remaining = np.diff(R.indptr).astype(np.int64)  # out-degree per state
    levels = np.zeros(n, dtype=np.int64)
    Rcsc = R.tocsc()
    pred_indptr, pred_indices = Rcsc.indptr, Rcsc.indices

    ready = [int(s) for s in np.flatnonzero(remaining == 0)]
    processed = 0
    # Longest-path levels: a predecessor's level is 1 + max over successors.
    while ready:
        v = ready.pop()
        processed += 1
        lv = levels[v] + 1
        for u in pred_indices[pred_indptr[v] : pred_indptr[v + 1]]:
            if levels[u] < lv:
                levels[u] = lv
            remaining[u] -= 1
            if remaining[u] == 0:
                ready.append(int(u))
    if processed != n:
        return None

    depth = int(levels.max()) + 1 if n else 0
    order = np.argsort(levels, kind="stable")
    sorted_levels = levels[order]
    boundaries = np.searchsorted(sorted_levels, np.arange(depth + 1))
    level_states = [order[boundaries[L] : boundaries[L + 1]] for L in range(depth)]
    return DagStructure(levels=levels, level_states=level_states)


def solve_dag(
    chain: CTMC,
    structure: DagStructure,
    numerators: np.ndarray,
    boundary: np.ndarray,
) -> np.ndarray:
    """Solve the boundary-value recurrence on a DAG chain.

    Parameters
    ----------
    chain:
        The chain (must be the one ``structure`` was computed from).
    structure:
        Output of :func:`topological_levels`.
    numerators:
        ``(n,)`` or ``(n, k)`` array ``b`` of per-state numerators
        (reward rates); values at absorbing states are ignored.
    boundary:
        ``(n,)`` or ``(n, k)`` array of prescribed values at absorbing
        states; values at transient states are ignored.

    Returns
    -------
    ``(n,)`` or ``(n, k)`` array ``x`` with ``x = boundary`` on absorbing
    states and ``x_s = (b_s + Σ_j R_sj x_j) / q_s`` on transient states.
    """
    R = chain.rates
    q = chain.out_rates
    n = chain.num_states

    b = np.asarray(numerators, dtype=float)
    g = np.asarray(boundary, dtype=float)
    squeeze = b.ndim == 1
    if b.ndim == 1:
        b = b[:, None]
    if g.ndim == 1:
        g = g[:, None]
    if b.shape[0] != n or g.shape[0] != n:
        raise SolverError(
            f"numerators/boundary first dimension must be {n}, got {b.shape[0]}/{g.shape[0]}"
        )
    if g.shape[1] != b.shape[1]:
        raise SolverError("numerators and boundary must have matching column counts")

    x = np.zeros_like(b)
    absorbing = chain.absorbing_mask
    x[absorbing] = g[absorbing]

    # Level 0 is exactly the absorbing set (out-degree zero ⇒ q == 0).
    for rows in structure.level_states[1:]:
        contrib = R[rows, :] @ x  # successors are all in lower levels: final
        x[rows] = (b[rows] + contrib) / q[rows, None]

    return x[:, 0] if squeeze else x


# ---------------------------------------------------------------------------
# Structure-sharing multi-point solver
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BatchDagStructure:
    """Shared sparsity pattern + level schedule for many rate fills.

    A whole parameter sweep shares one transition *pattern* — only the
    rate values differ per grid point — so the topological schedule and
    the gather plan are computed once and reused by every
    :func:`solve_dag_batch` call. The pattern is stored twice:

    * canonical CSR (``indptr``/``indices``, columns sorted within each
      row) — the shape rate fills scatter into;
    * padded ELL (``ell_cols``/``ell_slots``/``ell_pad``, one fixed-width
      row per state, real slots first in CSR order, pads after) — the
      shape the vectorised backward sweep gathers from. Keeping the
      real slots in CSR order makes the batched per-row accumulation
      run in exactly the sequence scipy's CSR matvec uses, which is
      what makes the batched solve *bit-identical* to the per-point
      one (trailing ``+ 0.0`` pads cannot perturb an IEEE sum of
      finite non-negative terms).

    The level schedule is computed on the pattern alone. Any per-point
    pattern is a subset (rates may evaluate to zero), and removing
    edges only ever relaxes scheduling constraints, so the shared
    schedule stays valid for every point; per-point *rate-absorbing*
    states (all-zero rows) are handled by the boundary short-circuit in
    :func:`solve_dag_batch`.
    """

    indptr: np.ndarray
    indices: np.ndarray
    #: Row index of every CSR slot (``nnz``-long, non-decreasing).
    slot_rows: np.ndarray
    structure: DagStructure
    ell_cols: np.ndarray
    ell_slots: np.ndarray
    ell_pad: np.ndarray
    width: int
    #: Fused-gather plan: the ELL rows permuted into level order so the
    #: backward sweep slices *contiguous* per-level views instead of
    #: fancy-gathering rows per level. ``lvl_rows`` is the state order
    #: (``concatenate(level_states)``), ``lvl_row_bounds`` the level
    #: boundaries into it, and ``lvl_ell_slots`` points pad entries at
    #: the sentinel slot ``nnz`` so one gather from the zero-extended
    #: value array replaces the gather + ``np.where`` pad pass.
    lvl_rows: np.ndarray
    lvl_row_bounds: np.ndarray
    lvl_ell_slots: np.ndarray
    lvl_ell_cols: np.ndarray

    @property
    def num_states(self) -> int:
        return self.indptr.size - 1

    @property
    def nnz(self) -> int:
        return self.indices.size


def batch_dag_structure(
    indptr: np.ndarray, indices: np.ndarray
) -> BatchDagStructure:
    """Build the shared schedule for a CSR sparsity pattern.

    ``indptr``/``indices`` must be canonical CSR (columns ascending
    within each row, no duplicates). Raises
    :class:`~repro.errors.SolverError` when the pattern has a cycle.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int64)
    n = indptr.size - 1
    nnz = indices.size
    if n < 1 or indptr[0] != 0 or indptr[-1] != nnz:
        raise SolverError("malformed CSR pattern")

    deg = np.diff(indptr)
    width = int(deg.max()) if n else 0
    rows_of_slot = np.repeat(np.arange(n, dtype=np.int64), deg)
    pos_in_row = np.arange(nnz, dtype=np.int64) - np.repeat(indptr[:-1], deg)

    ell_slots = np.zeros((n, max(width, 1)), dtype=np.int64)
    ell_pad = np.ones((n, max(width, 1)), dtype=bool)
    ell_cols = np.zeros((n, max(width, 1)), dtype=np.int64)
    ell_slots[rows_of_slot, pos_in_row] = np.arange(nnz, dtype=np.int64)
    ell_pad[rows_of_slot, pos_in_row] = False
    ell_cols[rows_of_slot, pos_in_row] = indices

    # Predecessor lists (CSC view of the pattern) for the level sweep.
    order = np.argsort(indices, kind="stable")
    pred_rows = rows_of_slot[order]
    pred_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(indices, minlength=n), out=pred_indptr[1:])

    # Level-synchronous Kahn: wave L processes exactly the states whose
    # longest path to an out-degree-zero state is L, so levels fall out
    # of the wave index; everything per wave is array arithmetic.
    remaining = deg.copy()
    levels = np.zeros(n, dtype=np.int64)
    current = np.flatnonzero(remaining == 0)
    processed = current.size
    level = 0
    while True:
        starts = pred_indptr[current]
        lens = pred_indptr[current + 1] - starts
        total = int(lens.sum())
        if total == 0:
            break
        # Ragged gather of every predecessor slot of the current wave.
        offsets = np.repeat(np.cumsum(lens) - lens, lens)
        flat = np.repeat(starts, lens) + (np.arange(total) - offsets)
        preds = pred_rows[flat]
        level += 1
        levels[preds] = level
        remaining -= np.bincount(preds, minlength=n)
        candidates = np.unique(preds)
        current = candidates[remaining[candidates] == 0]
        processed += current.size
    if processed != n:
        raise SolverError("pattern is cyclic; batched DAG solve not applicable")

    depth = int(levels.max()) + 1 if n else 0
    order_l = np.argsort(levels, kind="stable")
    sorted_levels = levels[order_l]
    boundaries = np.searchsorted(sorted_levels, np.arange(depth + 1))
    level_states = [order_l[boundaries[L] : boundaries[L + 1]] for L in range(depth)]

    # Fused-gather plan: ELL rows in level order, pads pointing at the
    # sentinel slot ``nnz`` (one gather from a zero-extended value
    # array yields exact ``0.0`` pads with no masking pass).
    lvl_ell_slots = ell_slots[order_l].copy()
    lvl_ell_slots[ell_pad[order_l]] = nnz
    lvl_ell_cols = ell_cols[order_l]

    return BatchDagStructure(
        indptr=indptr,
        indices=indices,
        slot_rows=rows_of_slot,
        structure=DagStructure(levels=levels, level_states=level_states),
        ell_cols=ell_cols,
        ell_slots=ell_slots,
        ell_pad=ell_pad,
        width=width,
        lvl_rows=order_l,
        lvl_row_bounds=boundaries,
        lvl_ell_slots=lvl_ell_slots,
        lvl_ell_cols=lvl_ell_cols,
    )


def _group_zero_patterns(
    masks: np.ndarray, *, fast: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Group boolean rows by identical pattern: ``(patterns, inverse)``.

    ``fast`` hashes each row's raw bytes into a dict — O(P · nnz) with
    tiny constants. The legacy path is ``np.unique(axis=0)``, which
    builds a structured dtype with one *field per slot* and is
    catastrophically slow at lattice sizes (seconds at ``nnz ≈ 3·10⁵``);
    it is kept only so ``REPRO_FUSED_GATHER=0`` reproduces the
    pre-fusion baseline. Both return the same groups (grouping is a
    vectorisation detail; the per-group arithmetic is identical), only
    the pattern *order* may differ.
    """
    if not fast:
        return np.unique(masks, axis=0, return_inverse=True)
    groups: dict[bytes, int] = {}
    inverse = np.empty(masks.shape[0], dtype=np.int64)
    representatives: list[int] = []
    for i, row in enumerate(np.ascontiguousarray(masks)):
        key = row.tobytes()
        g = groups.setdefault(key, len(representatives))
        if g == len(representatives):
            representatives.append(i)
        inverse[i] = g
    return masks[representatives], inverse


def _row_sums(
    shared: BatchDagStructure, values: np.ndarray, *, fast_grouping: bool = False
) -> np.ndarray:
    """Per-point out-rates, bit-identical to scipy's on the pruned chain.

    scipy's CSR ``sum(axis=1)`` reduces each row's data with
    ``np.add.reduceat`` — *pairwise* grouping over exactly the stored
    (nonzero) entries — while its matvec accumulates sequentially. The
    backward sweep must therefore compute ``q`` with the same reduceat
    over the same element multiset: a plain reduceat over the shared
    pattern when a point stores no explicit zeros, and a reduceat over
    the zero-pruned copy when it does (an inserted ``0.0`` changes the
    pairwise grouping, unlike in a sequential sum).
    """
    P, n = values.shape[0], shared.num_states
    q = np.zeros((P, n))
    if shared.nnz == 0:
        return q
    deg = np.diff(shared.indptr)
    nonempty = deg > 0
    starts = shared.indptr[:-1][nonempty]
    if starts.size:
        q[:, nonempty] = np.add.reduceat(values, starts, axis=1)
    zero_points = np.flatnonzero(~np.all(values != 0.0, axis=1))
    if zero_points.size == 0:
        return q
    # Zero-containing points, grouped by identical zero pattern: a
    # sweep that zeroes a rate usually zeroes it at the *same* slots
    # for every grid point (e.g. host_false_positive = 0 kills every
    # false-accusation edge), so one stacked reduceat per distinct
    # pattern keeps the correction vectorised across points instead of
    # degrading to a per-point Python loop.
    masks = values[zero_points] != 0.0
    patterns, inverse = _group_zero_patterns(masks, fast=fast_grouping)
    for g in range(patterns.shape[0]):
        keep = patterns[g]
        points = zero_points[inverse == g]
        pruned = values[np.ix_(points, np.flatnonzero(keep))]
        deg_g = np.bincount(shared.slot_rows[keep], minlength=n)
        nonempty_g = deg_g > 0
        starts_g = (np.cumsum(deg_g) - deg_g)[nonempty_g]
        q_g = np.zeros((points.size, n))
        if starts_g.size:
            q_g[:, nonempty_g] = np.add.reduceat(pruned, starts_g, axis=1)
        q[points] = q_g
    return q


def solve_dag_batch(
    shared: BatchDagStructure,
    values: np.ndarray,
    numerators: np.ndarray,
    boundary: np.ndarray,
    *,
    fused: Optional[bool] = None,
    kernel: Optional[str] = None,
) -> np.ndarray:
    """Solve the boundary-value recurrence for ``P`` rate fills at once.

    Parameters
    ----------
    shared:
        Output of :func:`batch_dag_structure` for the common pattern.
    values:
        ``(P, nnz)`` transition rates, one row per grid point, aligned
        with the pattern's CSR slots. Explicit zeros are allowed (they
        contribute exact ``+0.0`` terms).
    numerators:
        ``(P, n, k)`` per-state numerators ``b``; ignored wherever a
        point's state is absorbing (zero out-rate *for that point*).
    boundary:
        ``(n, k)`` (shared) or ``(P, n, k)`` prescribed values at
        absorbing states; ignored at transient states.
    fused:
        Legacy switch: ``True``/``False`` selects the fused-gather or
        the pre-fusion (``numpy``) kernel explicitly; ``None``
        (default) defers to ``kernel``. The two kernels compute the
        *same* IEEE operation sequence per element — equal results
        (the fused kernel folds the pad-masking pass into a
        sentinel-slot gather and skips no-op absorbing masks; it never
        reorders a single addition).
    kernel:
        Explicit kernel tier (``"numba"``/``"fused"``/``"numpy"``);
        ``None`` (default) follows ``REPRO_KERNEL`` then the legacy
        ``REPRO_FUSED_GATHER`` switch — see
        :func:`repro.ctmc.kernels.resolve_kernel`. The ``numba`` tier
        runs the jitted one-pass sweep (bit-identical to ``fused``)
        and degrades to ``fused`` when numba is absent or the jit
        fails.

    Returns
    -------
    ``(P, n, k)`` array ``x`` with, per point, ``x = boundary`` on that
    point's absorbing states and ``x_s = (b_s + Σ_j R_sj x_j) / q_s``
    on its transient states — bit-identical to running
    :func:`solve_dag` per point on the per-point (zero-pruned) chain.
    """
    values = np.asarray(values, dtype=float)
    numerators = np.asarray(numerators, dtype=float)
    boundary = np.asarray(boundary, dtype=float)
    if values.ndim != 2 or values.shape[1] != shared.nnz:
        raise SolverError(
            f"values must have shape (P, {shared.nnz}), got {values.shape}"
        )
    P = values.shape[0]
    n = shared.num_states
    if numerators.ndim != 3 or numerators.shape[:2] != (P, n):
        raise SolverError(
            f"numerators must have shape ({P}, {n}, k), got {numerators.shape}"
        )
    k = numerators.shape[2]
    if boundary.shape == (n, k):
        boundary = np.broadcast_to(boundary, (P, n, k))
    elif boundary.shape != (P, n, k):
        raise SolverError(
            f"boundary must have shape ({n}, {k}) or ({P}, {n}, {k}), "
            f"got {boundary.shape}"
        )
    kernel = resolve_kernel(kernel, fused=fused)
    if kernel == "numba":
        # Compile (and warm) the jitted kernels up front: a jit failure
        # degrades to the fused tier *before* the span opens, so the
        # recorded kernel tag is always the tier that actually ran.
        try:
            from ._numba_kernels import ensure_compiled

            ensure_compiled()
        except Exception:  # noqa: BLE001 — jit failure must not kill a solve
            metrics().counter("solver.kernel_jit_failures").add()
            kernel = "fused"
    levels = len(shared.structure.level_states)
    with span(
        "solve_dag_batch", points=P, states=n, levels=levels, kernel=kernel
    ):
        if kernel == "numba":
            result = _solve_dag_batch_numba(shared, values, numerators, boundary)
        elif kernel == "fused":
            result = _solve_dag_batch_fused(shared, values, numerators, boundary)
        else:
            result = _solve_dag_batch_legacy(shared, values, numerators, boundary)
    registry = metrics()
    registry.counter("solver.dag_batch_solves").add()
    registry.counter("solver.dag_points_solved").add(P)
    registry.counter("solver.dag_level_sweeps").add(levels)
    return result


def _solve_dag_batch_legacy(
    shared: BatchDagStructure,
    values: np.ndarray,
    numerators: np.ndarray,
    boundary: np.ndarray,
) -> np.ndarray:
    """The pre-fusion (PR 4) kernel: per-``j`` row gathers + masked pads."""
    P, n, k = numerators.shape

    # Gather the CSR values into the padded ELL layout (pads -> 0.0).
    if shared.nnz == 0:
        ell_vals = np.zeros((P,) + shared.ell_slots.shape)
    else:
        ell_vals = np.where(shared.ell_pad, 0.0, values[:, shared.ell_slots])

    q = _row_sums(shared, values)

    absorbing = q == 0.0
    x = np.where(absorbing[:, :, None], boundary, 0.0)
    safe_q = np.where(absorbing, 1.0, q)

    for rows in shared.structure.level_states[1:]:
        cols = shared.ell_cols[rows]
        contrib = np.zeros((P, rows.size, k))
        for j in range(shared.width):
            contrib += ell_vals[:, rows, j, None] * x[:, cols[:, j], :]
        solved = (numerators[:, rows, :] + contrib) / safe_q[:, rows, None]
        x[:, rows, :] = np.where(absorbing[:, rows, None], x[:, rows, :], solved)

    return x


def _solve_dag_batch_fused(
    shared: BatchDagStructure,
    values: np.ndarray,
    numerators: np.ndarray,
    boundary: np.ndarray,
) -> np.ndarray:
    """Fused-gather kernel: one sentinel-slot gather, level-sliced views.

    Three fusions over the legacy kernel, none of which changes a
    single IEEE operation on the solved values:

    * the ``(P, n, width)`` ELL value gather and its pad-masking
      ``np.where`` pass collapse into *one* gather from the
      zero-extended value array (pad slots point at a sentinel ``0.0``
      column — exactly the value the mask produced);
    * the gathered ELL rows are pre-permuted into level order
      (``lvl_ell_slots``/``lvl_ell_cols``), so the per-level inner loop
      slices contiguous views instead of fancy-gathering rows ``width``
      times per level;
    * when every point's absorbing set is exactly the structural one
      (no explicit all-zero rows — the common case for real rate
      fills), the boundary scatter happens once on the absorbing index
      set and the per-level absorbing re-masking (a no-op there, since
      levels ≥ 1 are structurally non-absorbing) is skipped entirely.

    ``contrib`` accumulates strictly in CSR slot order starting from
    the first term — the same sequential order as the legacy kernel's
    ``0.0 + t₀ + t₁ + …`` (IEEE-identical: ``0.0 + t₀ == t₀`` for the
    non-negative products of a rate fill) and as scipy's sequential
    CSR matvec in per-point :func:`solve_dag`.
    """
    P, n, k = numerators.shape

    q = _row_sums(shared, values, fast_grouping=True)
    absorbing = q == 0.0
    struct_abs = shared.structure.levels == 0
    uniform = bool(np.array_equal(absorbing, np.broadcast_to(struct_abs, (P, n))))
    if uniform:
        x = np.zeros((P, n, k))
        idx = np.flatnonzero(struct_abs)
        x[:, idx, :] = boundary[:, idx, :]
        safe_q = q  # levels >= 1 are non-absorbing for every point
    else:
        x = np.where(absorbing[:, :, None], boundary, 0.0)
        safe_q = np.where(absorbing, 1.0, q)

    # One gather with a sentinel zero column replaces gather + mask.
    vals_ext = np.concatenate([values, np.zeros((P, 1))], axis=1)
    ell_vals = vals_ext[:, shared.lvl_ell_slots]  # (P, n, width), level order

    bounds = shared.lvl_row_bounds
    for L, rows in enumerate(shared.structure.level_states[1:], start=1):
        a, b = bounds[L], bounds[L + 1]
        ev = ell_vals[:, a:b, :]
        cols = shared.lvl_ell_cols[a:b]
        contrib = ev[:, :, 0, None] * x[:, cols[:, 0], :]
        for j in range(1, shared.width):
            contrib += ev[:, :, j, None] * x[:, cols[:, j], :]
        solved = (numerators[:, rows, :] + contrib) / safe_q[:, rows, None]
        if uniform:
            x[:, rows, :] = solved
        else:
            x[:, rows, :] = np.where(
                absorbing[:, rows, None], x[:, rows, :], solved
            )

    return x


def _solve_dag_batch_numba(
    shared: BatchDagStructure,
    values: np.ndarray,
    numerators: np.ndarray,
    boundary: np.ndarray,
) -> np.ndarray:
    """Jitted one-pass sweep: the fused kernel compiled and point-parallel.

    Setup (out-rates, absorbing masks, boundary scatter, sentinel
    extension) is byte-for-byte the fused kernel's — in particular
    ``q`` keeps coming from :func:`_row_sums`, whose pairwise
    ``np.add.reduceat`` grouping is what matches scipy's row sums; only
    the level sweep itself moves into
    :func:`repro.ctmc._numba_kernels.dag_sweep`, which fuses the
    per-level gather → MAC → divide chain into one compiled pass with
    the parallel axis on *points* (levels within a point stay
    sequential). The jitted MAC accumulates in the same CSR slot order
    from the same unseeded first term, so results are bit-identical to
    the fused (and hence the numpy and per-point) kernels.
    """
    from ._numba_kernels import dag_sweep

    P, n, k = numerators.shape

    q = _row_sums(shared, values, fast_grouping=True)
    absorbing = q == 0.0
    struct_abs = shared.structure.levels == 0
    uniform = bool(np.array_equal(absorbing, np.broadcast_to(struct_abs, (P, n))))
    if uniform:
        x = np.zeros((P, n, k))
        idx = np.flatnonzero(struct_abs)
        x[:, idx, :] = boundary[:, idx, :]
        safe_q = q  # levels >= 1 are non-absorbing for every point
    else:
        x = np.where(absorbing[:, :, None], boundary, 0.0)
        safe_q = np.where(absorbing, 1.0, q)

    vals_ext = np.concatenate([values, np.zeros((P, 1))], axis=1)
    dag_sweep(
        vals_ext,
        shared.lvl_rows,
        shared.lvl_row_bounds,
        shared.lvl_ell_slots,
        shared.lvl_ell_cols,
        np.ascontiguousarray(numerators),
        np.ascontiguousarray(safe_q),
        np.ascontiguousarray(absorbing),
        uniform,
        x,
    )
    return x
