"""Sparse finite-state CTMC container.

A :class:`CTMC` stores the off-diagonal transition *rate* matrix ``R``
(CSR, ``R[i, j]`` = rate of jumping from state ``i`` to state ``j``).
The generator is ``Q = R - diag(R @ 1)``. States with zero total exit
rate are *absorbing*.

States are integers ``0..n-1``; an optional ``labels`` sequence attaches
arbitrary hashable labels (e.g. SPN markings) to states for reporting.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from ..errors import ModelError, ParameterError

__all__ = ["CTMC"]

TransitionTriple = Tuple[int, int, float]


class CTMC:
    """A finite-state continuous-time Markov chain.

    Parameters
    ----------
    rates:
        ``(n, n)`` scipy sparse matrix (any format) of non-negative
        off-diagonal transition rates. Diagonal entries are ignored
        (self-loops have no meaning in a CTMC and are dropped).
    labels:
        Optional sequence of ``n`` hashable state labels.

    Notes
    -----
    The matrix is canonicalised to CSR with duplicate entries summed and
    explicit zeros pruned, so ``nnz`` equals the number of distinct
    positive-rate transitions.
    """

    def __init__(
        self,
        rates: sp.spmatrix,
        labels: Optional[Sequence[Hashable]] = None,
    ) -> None:
        if not sp.issparse(rates):
            rates = sp.csr_matrix(np.asarray(rates, dtype=float))
        if rates.shape[0] != rates.shape[1]:
            raise ModelError(f"rate matrix must be square, got shape {rates.shape}")
        n = rates.shape[0]
        if n == 0:
            raise ModelError("CTMC must have at least one state")

        R = rates.tocsr().astype(float, copy=True)
        R.sum_duplicates()
        # Drop self-loops: they do not affect CTMC dynamics.
        R.setdiag(0.0)
        R.eliminate_zeros()
        if R.nnz and R.data.min() < 0.0:
            raise ModelError("transition rates must be non-negative")
        if R.nnz and not np.all(np.isfinite(R.data)):
            raise ModelError("transition rates must be finite")

        self._R: sp.csr_matrix = R
        self._out: np.ndarray = np.asarray(R.sum(axis=1)).ravel()
        if labels is not None:
            labels = list(labels)
            if len(labels) != n:
                raise ModelError(f"labels has length {len(labels)}, expected {n}")
        self._labels: Optional[list[Hashable]] = labels

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_transitions(
        cls,
        num_states: int,
        transitions: Iterable[TransitionTriple],
        labels: Optional[Sequence[Hashable]] = None,
    ) -> "CTMC":
        """Build a chain from ``(src, dst, rate)`` triples.

        Zero-rate triples are accepted and dropped; duplicate ``(src,
        dst)`` pairs are summed.
        """
        if num_states < 1:
            raise ModelError(f"num_states must be >= 1, got {num_states}")
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        for src, dst, rate in transitions:
            if not (0 <= src < num_states and 0 <= dst < num_states):
                raise ModelError(
                    f"transition ({src} -> {dst}) out of range for {num_states} states"
                )
            rate = float(rate)
            if not np.isfinite(rate):
                raise ModelError(
                    f"non-finite rate {rate} on transition ({src} -> {dst})"
                )
            if rate < 0.0:
                raise ModelError(
                    f"negative rate {rate} on transition ({src} -> {dst})"
                )
            if rate > 0.0 and src != dst:
                rows.append(src)
                cols.append(dst)
                vals.append(rate)
        R = sp.csr_matrix(
            (np.asarray(vals, dtype=float), (np.asarray(rows), np.asarray(cols))),
            shape=(num_states, num_states),
        )
        return cls(R, labels=labels)

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        """Number of states ``n``."""
        return self._R.shape[0]

    @property
    def rates(self) -> sp.csr_matrix:
        """Off-diagonal rate matrix ``R`` (CSR; do not mutate)."""
        return self._R

    @property
    def out_rates(self) -> np.ndarray:
        """Total exit rate per state, ``q_i = Σ_j R[i, j]``."""
        return self._out

    @property
    def labels(self) -> Optional[list[Hashable]]:
        """State labels, if attached."""
        return self._labels

    @property
    def absorbing_mask(self) -> np.ndarray:
        """Boolean mask of absorbing states (zero exit rate)."""
        return self._out == 0.0

    @property
    def absorbing_states(self) -> np.ndarray:
        """Indices of absorbing states."""
        return np.flatnonzero(self.absorbing_mask)

    @property
    def transient_states(self) -> np.ndarray:
        """Indices of non-absorbing states."""
        return np.flatnonzero(~self.absorbing_mask)

    @property
    def num_transitions(self) -> int:
        """Number of distinct positive-rate transitions."""
        return self._R.nnz

    def generator(self) -> sp.csr_matrix:
        """Infinitesimal generator ``Q = R - diag(q)`` (new matrix)."""
        Q = self._R.tolil(copy=True)
        Q.setdiag(-self._out)
        return Q.tocsr()

    def uniformization_rate(self) -> float:
        """A valid uniformization constant ``Λ ≥ max_i q_i`` (strictly
        positive even for an all-absorbing chain, so ``P`` is defined)."""
        qmax = float(self._out.max()) if self.num_states else 0.0
        return qmax if qmax > 0.0 else 1.0

    def uniformized_dtmc(self, rate: Optional[float] = None) -> sp.csr_matrix:
        """Uniformized jump matrix ``P = I + Q/Λ`` (row-stochastic)."""
        lam = self.uniformization_rate() if rate is None else float(rate)
        if lam < self._out.max() or lam <= 0.0:
            raise ParameterError(
                f"uniformization rate {lam} must be positive and >= max exit rate {self._out.max()}"
            )
        P = (self._R / lam).tolil()
        P.setdiag(1.0 - self._out / lam)
        return P.tocsr()

    # ------------------------------------------------------------------
    # Reachability helpers
    # ------------------------------------------------------------------
    def reachable_from(self, initial: Union[int, Sequence[int]]) -> np.ndarray:
        """Indices of states reachable from ``initial`` (inclusive)."""
        seeds = np.atleast_1d(np.asarray(initial, dtype=int))
        if seeds.size and (seeds.min() < 0 or seeds.max() >= self.num_states):
            raise ParameterError(f"initial state out of range: {initial!r}")
        seen = np.zeros(self.num_states, dtype=bool)
        stack = list(seeds)
        seen[seeds] = True
        indptr, indices = self._R.indptr, self._R.indices
        while stack:
            s = stack.pop()
            for j in indices[indptr[s] : indptr[s + 1]]:
                if not seen[j]:
                    seen[j] = True
                    stack.append(int(j))
        return np.flatnonzero(seen)

    def can_reach(self, targets: Sequence[int]) -> np.ndarray:
        """Boolean mask of states from which some state in ``targets``
        is reachable (following transition direction)."""
        targets = np.atleast_1d(np.asarray(targets, dtype=int))
        mask = np.zeros(self.num_states, dtype=bool)
        mask[targets] = True
        # Walk the reversed graph from the targets.
        Rt = self._R.tocsc()
        stack = list(targets)
        indptr, indices = Rt.indptr, Rt.indices
        while stack:
            s = stack.pop()
            for i in indices[indptr[s] : indptr[s + 1]]:
                if not mask[i]:
                    mask[i] = True
                    stack.append(int(i))
        return mask

    def subchain(self, states: Sequence[int]) -> Tuple["CTMC", np.ndarray]:
        """Restrict the chain to ``states``.

        Returns the restricted chain and the array of original indices
        (so ``original_index = mapping[new_index]``). Transitions leaving
        the retained set are dropped, which turns their sources into
        states with reduced exit rate — callers must ensure the retained
        set is closed under reachability when that matters (e.g.
        :func:`repro.ctmc.absorbing.analyze_absorbing` restricts to the
        reachable set, which is closed by construction).
        """
        idx = np.unique(np.asarray(states, dtype=int))
        if idx.size == 0:
            raise ParameterError("subchain requires at least one state")
        if idx.min() < 0 or idx.max() >= self.num_states:
            raise ParameterError("subchain state indices out of range")
        sub = self._R[idx][:, idx]
        labels = [self._labels[i] for i in idx] if self._labels is not None else None
        return CTMC(sub, labels=labels), idx

    def validate_initial_distribution(
        self, initial: Union[int, np.ndarray]
    ) -> np.ndarray:
        """Coerce ``initial`` (state index or probability vector) into a
        validated probability vector of length ``n``."""
        if isinstance(initial, (int, np.integer)) and not isinstance(initial, bool):
            if not 0 <= int(initial) < self.num_states:
                raise ParameterError(f"initial state {initial} out of range")
            dist = np.zeros(self.num_states)
            dist[int(initial)] = 1.0
            return dist
        dist = np.asarray(initial, dtype=float)
        if dist.shape != (self.num_states,):
            raise ParameterError(
                f"initial distribution has shape {dist.shape}, expected ({self.num_states},)"
            )
        if np.any(dist < -1e-12) or not np.isclose(dist.sum(), 1.0, atol=1e-9):
            raise ParameterError(
                "initial distribution must be non-negative and sum to 1"
            )
        return np.clip(dist, 0.0, None) / dist.sum()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CTMC(n={self.num_states}, transitions={self.num_transitions}, "
            f"absorbing={int(self.absorbing_mask.sum())})"
        )
