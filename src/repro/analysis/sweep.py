"""Generic parameter sweep utilities.

:func:`grid_sweep` is the analysis layer's cartesian-product primitive.
It accepts any iterable per axis (generators and other unsized
iterables are materialised up front), evaluates in deterministic
lexicographic order, and can optionally dispatch points through a
:mod:`repro.engine` execution backend — which is how a generic sweep
gains process-pool parallelism and per-point error capture without the
caller writing any orchestration code.

:func:`model_grid_sweep` is the model-aware variant: axes range over
:meth:`GCSParameters.replacing` keys and every point is an engine
:class:`~repro.engine.batch.EvalRequest`, which means a
``backend="vector"`` sweep is solved by the structure-sharing batched
lattice solver in one pass instead of point by point.
"""

from __future__ import annotations

import functools
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Optional, Union

from ..errors import ParameterError

__all__ = [
    "SweepPoint",
    "grid_sweep",
    "model_grid_sweep",
    "survivability_grid_sweep",
]


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated grid point.

    ``error`` is ``None`` for a successful evaluation; when the sweep
    runs with ``capture_errors=True`` a failing point carries the
    exception text here (and ``value`` is ``None``) instead of aborting
    the whole sweep.
    """

    assignment: Mapping[str, Any]
    value: Any
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _materialize_axes(
    grid: Mapping[str, Iterable[Any]]
) -> dict[str, tuple[Any, ...]]:
    """Snapshot every axis as a tuple so any iterable works (a bare
    generator would otherwise crash ``len()`` and then be consumed by
    the first product pass)."""
    if not grid:
        raise ParameterError("grid must be non-empty")
    axes: dict[str, tuple[Any, ...]] = {}
    for name, values in grid.items():
        axis = tuple(values)
        if not axis:
            raise ParameterError(f"grid axis {name!r} is empty")
        axes[name] = axis
    return axes


def _apply_assignment(
    evaluate: Callable[..., Any], assignment: Mapping[str, Any]
) -> Any:
    """Module-level kwargs adapter (process pools need to pickle it)."""
    return evaluate(**assignment)


def _expand_assignments(
    axes: Mapping[str, tuple[Any, ...]]
) -> list[dict[str, Any]]:
    """Cartesian product in deterministic lexicographic axis order."""
    names = list(axes)
    return [
        dict(zip(names, combo))
        for combo in itertools.product(*(axes[n] for n in names))
    ]


def _resolve_backend(backend: Optional[Any]) -> Optional[Any]:
    """Accept backend objects or ``--jobs``-style spec strings/ints."""
    if backend is None or hasattr(backend, "run"):
        return backend
    from ..engine.executor import make_backend

    return make_backend(backend)


def _points_from_outcomes(
    assignments: list[Mapping[str, Any]],
    outcomes: list[Any],
    *,
    capture_errors: bool,
    progress: Callable[[SweepPoint], None] | None,
) -> list[SweepPoint]:
    """Convert backend :class:`PointOutcome`s into :class:`SweepPoint`s.

    Shared by every backend-dispatched sweep so error-propagation
    semantics stay in one place: unless errors are captured, the
    original exception is re-raised when the backend carried it across
    (it pickles), with a descriptive fallback otherwise — matching the
    serial path's behaviour.
    """
    points: list[SweepPoint] = []
    for assignment, outcome in zip(assignments, outcomes):
        if not outcome.ok and not capture_errors:
            if outcome.exception is not None:
                raise outcome.exception
            raise ParameterError(
                f"sweep point {assignment!r} failed: "
                f"{outcome.error_type}: {outcome.error}"
            )
        points.append(
            SweepPoint(
                assignment=assignment,
                value=outcome.value,
                error=None if outcome.ok else outcome.error,
            )
        )
        if progress is not None:
            progress(points[-1])
    return points


def grid_sweep(
    grid: Mapping[str, Iterable[Any]],
    evaluate: Callable[..., Any],
    *,
    progress: Callable[[SweepPoint], None] | None = None,
    backend: Optional[Any] = None,
    capture_errors: bool = False,
) -> list[SweepPoint]:
    """Cartesian-product sweep.

    ``grid`` maps parameter names to value iterables; ``evaluate`` is
    called with each assignment as keyword arguments, in deterministic
    lexicographic order of the grid definition.

    ``backend`` — any :class:`repro.engine.executor.ExecutionBackend`,
    or a :func:`~repro.engine.executor.make_backend` spec (``4``,
    ``"auto"``, ``"thread:2"``, ``"vector"``); points are dispatched
    through it (for a process pool, ``evaluate`` must be picklable)
    and always come back in grid order. An arbitrary callable cannot
    be vectorised, so a ``"vector"`` backend here runs the points
    through its serial fallback — use :func:`model_grid_sweep` for
    sweeps that should hit the batched lattice solver.
    ``capture_errors`` — record per-point failures on the returned
    :class:`SweepPoint` instead of raising; implied behaviour of every
    engine backend, re-raised here unless requested.
    """
    backend = _resolve_backend(backend)
    assignments = _expand_assignments(_materialize_axes(grid))

    if backend is not None:
        outcomes = backend.run(
            functools.partial(_apply_assignment, evaluate), assignments
        )
        return _points_from_outcomes(
            assignments, outcomes, capture_errors=capture_errors, progress=progress
        )

    points = []
    for assignment in assignments:
        if capture_errors:
            try:
                point = SweepPoint(assignment=assignment, value=evaluate(**assignment))
            except Exception as exc:  # noqa: BLE001 — capture is opt-in
                point = SweepPoint(assignment=assignment, value=None, error=str(exc))
        else:
            point = SweepPoint(assignment=assignment, value=evaluate(**assignment))
        points.append(point)
        if progress is not None:
            progress(point)
    return points


def model_grid_sweep(
    grid: Mapping[str, Iterable[Any]],
    *,
    base: Optional[Mapping[str, Any]] = None,
    params: Optional[Any] = None,
    method: str = "fast",
    backend: Union[Any, str, int, None] = None,
    capture_errors: bool = False,
    progress: Callable[[SweepPoint], None] | None = None,
) -> list[SweepPoint]:
    """Model-evaluation sweep routed through the engine's backends.

    Axes range over :meth:`GCSParameters.replacing` keys applied to
    ``params`` (default: :meth:`GCSParameters.paper_defaults` with the
    ``base`` overrides — that path delegates to
    :class:`repro.engine.jobs.SweepJob`, so grid-to-request semantics
    have one definition). Each point becomes an
    :class:`~repro.engine.batch.EvalRequest`, so every backend works
    and ``backend="vector"`` solves the whole grid with one
    structure-sharing batched sweep. Returned ``SweepPoint.value``s
    are :class:`~repro.core.results.GCSResult` objects.
    """
    from ..engine.batch import EvalRequest, evaluate_request
    from ..engine.executor import SerialBackend
    from ..engine.jobs import SweepJob

    if params is None:
        job = SweepJob(
            name="model-grid-sweep",
            axes=_materialize_axes(grid),
            base=dict(base or {}),
            method=method,
        )
        assignments, requests = map(list, zip(*job.requests()))
    else:
        if base:
            raise ParameterError("pass either params or base overrides, not both")
        assignments = _expand_assignments(_materialize_axes(grid))
        requests = [
            EvalRequest(params=params.replacing(**assignment), method=method)
            for assignment in assignments
        ]
    resolved = _resolve_backend(backend) or SerialBackend()
    outcomes = resolved.run(evaluate_request, requests)
    return _points_from_outcomes(
        assignments, outcomes, capture_errors=capture_errors, progress=progress
    )


def survivability_grid_sweep(
    grid: Mapping[str, Iterable[Any]],
    times: Iterable[float],
    *,
    base: Optional[Mapping[str, Any]] = None,
    params: Optional[Any] = None,
    eps: float = 1e-12,
    backend: Union[Any, str, int, None] = None,
    capture_errors: bool = False,
    progress: Callable[[SweepPoint], None] | None = None,
) -> list[SweepPoint]:
    """Survivability-curve sweep routed through the engine's backends.

    The transient counterpart of :func:`model_grid_sweep`: every grid
    point becomes a :class:`~repro.engine.batch.SurvivabilityRequest`
    over the shared mission-time grid ``times``, so
    ``backend="vector"`` solves the whole sweep with one multi-point
    uniformization pass (and ``backend="vector:N"`` fans chunks over
    ``N`` pool workers). Returned ``SweepPoint.value``s are
    :class:`~repro.core.results.SurvivabilityResult` objects.
    """
    from ..engine.batch import SurvivabilityRequest, evaluate_survivability_request
    from ..engine.executor import SerialBackend
    from ..engine.jobs import SurvivabilitySweep

    times = tuple(float(t) for t in times)
    if params is None:
        sweep = SurvivabilitySweep(
            name="survivability-grid-sweep",
            times_s=times,
            axes=_materialize_axes(grid),
            base=dict(base or {}),
            eps=eps,
        )
        assignments, requests = map(list, zip(*sweep.requests()))
    else:
        if base:
            raise ParameterError("pass either params or base overrides, not both")
        assignments = _expand_assignments(_materialize_axes(grid))
        requests = [
            SurvivabilityRequest(
                params=params.replacing(**assignment), times_s=times, eps=eps
            )
            for assignment in assignments
        ]
    resolved = _resolve_backend(backend) or SerialBackend()
    outcomes = resolved.run(evaluate_survivability_request, requests)
    return _points_from_outcomes(
        assignments, outcomes, capture_errors=capture_errors, progress=progress
    )
