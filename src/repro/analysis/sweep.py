"""Generic parameter sweep utilities.

:func:`grid_sweep` is the analysis layer's cartesian-product primitive.
It accepts any iterable per axis (generators and other unsized
iterables are materialised up front), evaluates in deterministic
lexicographic order, and can optionally dispatch points through a
:mod:`repro.engine` execution backend — which is how a generic sweep
gains process-pool parallelism and per-point error capture without the
caller writing any orchestration code.
"""

from __future__ import annotations

import functools
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Optional

from ..errors import ParameterError

__all__ = ["SweepPoint", "grid_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated grid point.

    ``error`` is ``None`` for a successful evaluation; when the sweep
    runs with ``capture_errors=True`` a failing point carries the
    exception text here (and ``value`` is ``None``) instead of aborting
    the whole sweep.
    """

    assignment: Mapping[str, Any]
    value: Any
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _materialize_axes(
    grid: Mapping[str, Iterable[Any]]
) -> dict[str, tuple[Any, ...]]:
    """Snapshot every axis as a tuple so any iterable works (a bare
    generator would otherwise crash ``len()`` and then be consumed by
    the first product pass)."""
    if not grid:
        raise ParameterError("grid must be non-empty")
    axes: dict[str, tuple[Any, ...]] = {}
    for name, values in grid.items():
        axis = tuple(values)
        if not axis:
            raise ParameterError(f"grid axis {name!r} is empty")
        axes[name] = axis
    return axes


def _apply_assignment(
    evaluate: Callable[..., Any], assignment: Mapping[str, Any]
) -> Any:
    """Module-level kwargs adapter (process pools need to pickle it)."""
    return evaluate(**assignment)


def grid_sweep(
    grid: Mapping[str, Iterable[Any]],
    evaluate: Callable[..., Any],
    *,
    progress: Callable[[SweepPoint], None] | None = None,
    backend: Optional[Any] = None,
    capture_errors: bool = False,
) -> list[SweepPoint]:
    """Cartesian-product sweep.

    ``grid`` maps parameter names to value iterables; ``evaluate`` is
    called with each assignment as keyword arguments, in deterministic
    lexicographic order of the grid definition.

    ``backend`` — any :class:`repro.engine.executor.ExecutionBackend`;
    points are dispatched through it (for a process pool, ``evaluate``
    must be picklable) and always come back in grid order.
    ``capture_errors`` — record per-point failures on the returned
    :class:`SweepPoint` instead of raising; implied behaviour of every
    engine backend, re-raised here unless requested.
    """
    axes = _materialize_axes(grid)
    names = list(axes)
    assignments = [
        dict(zip(names, combo))
        for combo in itertools.product(*(axes[n] for n in names))
    ]

    if backend is not None:
        outcomes = backend.run(
            functools.partial(_apply_assignment, evaluate), assignments
        )
        points: list[SweepPoint] = []
        for assignment, outcome in zip(assignments, outcomes):
            if not outcome.ok and not capture_errors:
                # Match the serial path's exception semantics: the
                # backend carries the original exception object across
                # the process boundary when it pickles; re-raise it so
                # callers see the same type either way.
                if outcome.exception is not None:
                    raise outcome.exception
                raise ParameterError(
                    f"sweep point {assignment!r} failed: "
                    f"{outcome.error_type}: {outcome.error}"
                )
            points.append(
                SweepPoint(
                    assignment=assignment,
                    value=outcome.value,
                    error=None if outcome.ok else outcome.error,
                )
            )
            if progress is not None:
                progress(points[-1])
        return points

    points = []
    for assignment in assignments:
        if capture_errors:
            try:
                point = SweepPoint(assignment=assignment, value=evaluate(**assignment))
            except Exception as exc:  # noqa: BLE001 — capture is opt-in
                point = SweepPoint(assignment=assignment, value=None, error=str(exc))
        else:
            point = SweepPoint(assignment=assignment, value=evaluate(**assignment))
        points.append(point)
        if progress is not None:
            progress(point)
    return points
