"""Generic parameter sweep utilities."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..errors import ParameterError

__all__ = ["SweepPoint", "grid_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated grid point."""

    assignment: Mapping[str, Any]
    value: Any


def grid_sweep(
    grid: Mapping[str, Sequence[Any]],
    evaluate: Callable[..., Any],
    *,
    progress: Callable[[SweepPoint], None] | None = None,
) -> list[SweepPoint]:
    """Cartesian-product sweep.

    ``grid`` maps parameter names to value lists; ``evaluate`` is called
    with each assignment as keyword arguments, in deterministic
    lexicographic order of the grid definition.
    """
    if not grid:
        raise ParameterError("grid must be non-empty")
    names = list(grid)
    for name, values in grid.items():
        if len(values) == 0:
            raise ParameterError(f"grid axis {name!r} is empty")
    points: list[SweepPoint] = []
    for combo in itertools.product(*(grid[n] for n in names)):
        assignment = dict(zip(names, combo))
        point = SweepPoint(assignment=assignment, value=evaluate(**assignment))
        points.append(point)
        if progress is not None:
            progress(point)
    return points
