"""Aligned plain-text table rendering (the harness's "plots")."""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import ParameterError
from .figures import DataSeries

__all__ = ["render_table", "render_series"]


def render_table(rows: Sequence[Sequence[str]], *, indent: str = "") -> str:
    """Align columns; first row is treated as a header."""
    if not rows:
        raise ParameterError("no rows to render")
    width = len(rows[0])
    for r in rows:
        if len(r) != width:
            raise ParameterError("ragged rows")
    col_w = [max(len(str(r[c])) for r in rows) for c in range(width)]
    lines = []
    for i, row in enumerate(rows):
        line = indent + "  ".join(str(v).rjust(col_w[c]) for c, v in enumerate(row))
        lines.append(line)
        if i == 0:
            lines.append(indent + "  ".join("-" * col_w[c] for c in range(width)))
    return "\n".join(lines)


def render_series(series: DataSeries, *, title: Optional[str] = None) -> str:
    """Render a :class:`DataSeries` with a heading."""
    head = title or f"{series.name}: {series.y_label} vs {series.x_label}"
    return f"{head}\n{render_table(series.to_rows())}"
