"""Tabular data series (one per regenerated figure)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..errors import ParameterError

__all__ = ["DataSeries"]


@dataclass(frozen=True)
class DataSeries:
    """An x-axis plus named y-series — the content of one figure.

    ``x`` is the swept variable (e.g. ``TIDS`` seconds); each entry of
    ``series`` is one curve (e.g. ``m=5`` or ``linear detection``).
    """

    name: str
    x_label: str
    x: tuple[float, ...]
    y_label: str
    series: Mapping[str, tuple[float, ...]]

    def __post_init__(self) -> None:
        if not self.x:
            raise ParameterError("x axis must be non-empty")
        for key, ys in self.series.items():
            if len(ys) != len(self.x):
                raise ParameterError(
                    f"series {key!r} has {len(ys)} points, x has {len(self.x)}"
                )

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        name: str,
        x_label: str,
        x: Sequence[float],
        y_label: str,
        series: Mapping[str, Sequence[float]],
    ) -> "DataSeries":
        return cls(
            name=name,
            x_label=x_label,
            x=tuple(float(v) for v in x),
            y_label=y_label,
            series={k: tuple(float(v) for v in vs) for k, vs in series.items()},
        )

    # ------------------------------------------------------------------
    def argbest(self, key: str, *, maximize: bool = True) -> tuple[float, float]:
        """``(x*, y*)`` of the max (or min) of one series."""
        if key not in self.series:
            raise ParameterError(f"unknown series {key!r}; have {sorted(self.series)}")
        ys = self.series[key]
        idx = max(range(len(ys)), key=lambda i: ys[i]) if maximize else min(
            range(len(ys)), key=lambda i: ys[i]
        )
        return self.x[idx], ys[idx]

    def to_rows(self) -> list[list[str]]:
        """Header + rows for table rendering / CSV."""
        header = [self.x_label] + list(self.series)
        rows: list[list[str]] = [header]
        for i, xv in enumerate(self.x):
            rows.append(
                [f"{xv:g}"] + [f"{self.series[k][i]:.4e}" for k in self.series]
            )
        return rows

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "x_label": self.x_label,
            "x": list(self.x),
            "y_label": self.y_label,
            "series": {k: list(v) for k, v in self.series.items()},
        }
