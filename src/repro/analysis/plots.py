"""ASCII line plots for :class:`~repro.analysis.figures.DataSeries`.

Matplotlib is unavailable offline, so the CLI renders figures as
terminal plots: one character glyph per series, optional logarithmic
axes (the paper plots Figures 2–5 on log-y), a legend, and axis labels.
Good enough to *see* the interior optima and crossovers the benchmarks
assert.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from ..errors import ParameterError
from .figures import DataSeries

__all__ = ["ascii_plot"]

_GLYPHS = "ox+*#@%&"


def _transform(values: Sequence[float], log: bool, axis: str) -> list[float]:
    out = []
    for v in values:
        if log:
            if v <= 0.0:
                raise ParameterError(
                    f"log {axis}-axis requires positive values, got {v}"
                )
            out.append(math.log10(v))
        else:
            out.append(float(v))
    return out


def ascii_plot(
    series: DataSeries,
    *,
    width: int = 64,
    height: int = 18,
    log_x: bool = True,
    log_y: bool = True,
    title: Optional[str] = None,
) -> str:
    """Render a data series as an ASCII scatter/line chart.

    ``log_x``/``log_y`` default to true because every figure in the
    paper spans decades on both axes.
    """
    if width < 16 or height < 6:
        raise ParameterError("plot needs width >= 16 and height >= 6")
    xs = _transform(series.x, log_x, "x")
    names = list(series.series)
    if len(names) > len(_GLYPHS):
        raise ParameterError(f"too many series for glyphs ({len(names)})")

    ys_all: list[list[float]] = [
        _transform(series.series[name], log_y, "y") for name in names
    ]
    y_min = min(min(ys) for ys in ys_all)
    y_max = max(max(ys) for ys in ys_all)
    x_min, x_max = min(xs), max(xs)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for ys, glyph in zip(ys_all, _GLYPHS):
        for x, y in zip(xs, ys):
            col = int(round((x - x_min) / x_span * (width - 1)))
            row = int(round((y - y_min) / y_span * (height - 1)))
            grid[height - 1 - row][col] = glyph

    def y_tick(level: float) -> str:
        value = 10**level if log_y else level
        return f"{value:9.3g}"

    lines = [title or f"{series.y_label} vs {series.x_label}"]
    for i, row in enumerate(grid):
        frac = 1.0 - i / (height - 1)
        label = y_tick(y_min + frac * y_span) if i % 4 == 0 or i == height - 1 else " " * 9
        lines.append(f"{label} |{''.join(row)}|")
    x_lo = 10**x_min if log_x else x_min
    x_hi = 10**x_max if log_x else x_max
    footer = f"{'':9} +{'-' * width}+"
    axis = f"{'':10}{x_lo:<10.4g}{series.x_label:^{width - 20}}{x_hi:>10.4g}"
    legend = "  ".join(f"{g}={n}" for g, n in zip(_GLYPHS, names))
    lines.extend([footer, axis, f"{'':10}legend: {legend}"])
    return "\n".join(lines)
