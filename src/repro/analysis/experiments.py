"""Experiment registry: every paper figure plus extension ablations.

Each experiment is a declarative :class:`Experiment` whose runner maps
an :class:`ExperimentConfig` to data series and human-readable notes.
``quick`` configs shrink the group to ``N = 40`` and/or reduce grids so
the whole registry runs in CI time; ``full`` configs reproduce the
paper's ``N = 100`` operating point. The *shapes* (interior optima,
orderings, crossovers) hold at both scales — that is asserted by the
benchmark suite.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from .. import constants as C
from ..core.optimizer import TradeoffPoint
from ..core.results import GCSResult
from ..core.scenario import Scenario
from ..engine.batch import BatchRunner, EvalRequest, evaluate_request, run_tids_sweep
from ..engine.executor import SerialBackend
from ..errors import ExperimentError
from ..params import GCSParameters
from ..sim.runner import run_replications
from .figures import DataSeries
from .tables import render_series

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "Experiment",
    "EXPERIMENTS",
    "get_experiment",
    "list_experiments",
    "run",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments.

    ``runner`` plugs in a :class:`repro.engine.batch.BatchRunner`: every
    model sweep then goes through its cache + execution backend (the
    CLI's ``--jobs`` / ``--cache-dir`` flags build one). ``None`` keeps
    the serial in-process seed path. Both paths evaluate the identical
    model code, so the produced series are byte-identical.
    """

    quick: bool = True
    seed: int = 0
    runner: Optional[BatchRunner] = field(default=None, compare=False)

    @property
    def num_nodes(self) -> int:
        return 40 if self.quick else C.PAPER_NUM_NODES

    @property
    def tids_grid(self) -> tuple[float, ...]:
        return C.PAPER_TIDS_GRID_S

    @property
    def tids_grid_cost(self) -> tuple[float, ...]:
        return C.PAPER_TIDS_GRID_COST_S

    @property
    def m_values(self) -> tuple[int, ...]:
        return C.PAPER_M_VALUES


@dataclass(frozen=True)
class ExperimentResult:
    """Everything an experiment produced."""

    experiment_id: str
    title: str
    series: tuple[DataSeries, ...]
    notes: tuple[str, ...]
    elapsed_seconds: float
    config: ExperimentConfig

    def render(self) -> str:
        parts = [f"== {self.experiment_id}: {self.title} "
                 f"({'quick' if self.config.quick else 'full'}, "
                 f"{self.elapsed_seconds:.1f}s) =="]
        for s in self.series:
            parts.append(render_series(s))
        if self.notes:
            parts.append("notes:")
            parts.extend(f"  - {n}" for n in self.notes)
        return "\n\n".join(parts)


Runner = Callable[[ExperimentConfig], tuple[list[DataSeries], list[str]]]


@dataclass(frozen=True)
class Experiment:
    """A registered, runnable experiment."""

    id: str
    title: str
    paper_artifact: str
    description: str
    runner: Runner

    def run(self, config: Optional[ExperimentConfig] = None) -> ExperimentResult:
        config = config or ExperimentConfig()
        start = time.perf_counter()
        series, notes = self.runner(config)
        elapsed = time.perf_counter() - start
        return ExperimentResult(
            experiment_id=self.id,
            title=self.title,
            series=tuple(series),
            notes=tuple(notes),
            elapsed_seconds=elapsed,
            config=config,
        )


# ---------------------------------------------------------------------------
# Figure experiments
# ---------------------------------------------------------------------------

def _base_scenario(config: ExperimentConfig, **overrides) -> Scenario:
    params = GCSParameters.paper_defaults(num_nodes=config.num_nodes, **overrides)
    return Scenario(params)


def _sweep_tids(
    scenario: Scenario,
    grid: Sequence[float],
    config: ExperimentConfig,
    **overrides,
) -> list[TradeoffPoint]:
    """Route a ``TIDS`` sweep through the engine when one is configured.

    Engine and serial path evaluate the same model on the same shared
    network environment; the engine additionally deduplicates repeated
    scenario points across figures and can fan out over processes.
    """
    if config.runner is not None:
        return run_tids_sweep(
            config.runner,
            scenario.params,
            grid,
            network=scenario.network,
            overrides=overrides,
        )
    return scenario.sweep_tids(grid, **overrides)


def _evaluate_point(
    scenario: Scenario, config: ExperimentConfig, **overrides
) -> GCSResult:
    """Single-point analogue of :func:`_sweep_tids`."""
    if config.runner is not None:
        return config.runner.evaluate(
            EvalRequest(
                params=scenario.params.replacing(**overrides),
                network=scenario.network,
            )
        )
    return scenario.evaluate(**overrides)


def _evaluate_requests(
    config: ExperimentConfig, requests: Sequence[EvalRequest]
) -> list[GCSResult]:
    """Evaluate arbitrary requests through the configured runner.

    With a runner the whole list is one deduplicated, cached,
    possibly-parallel batch that aborts on any point failure (matching
    the serial path's exception semantics); without one it is the plain
    in-process loop over the identical evaluation code.
    """
    if config.runner is not None:
        batch = config.runner.run(requests)
        batch.report.raise_on_error()
        results = list(batch.results)
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]
    return [evaluate_request(request) for request in requests]


def _fig2(config: ExperimentConfig) -> tuple[list[DataSeries], list[str]]:
    scenario = _base_scenario(config)
    grid = config.tids_grid
    series: dict[str, list[float]] = {}
    notes: list[str] = []
    for m in config.m_values:
        points = _sweep_tids(scenario, grid, config, num_voters=m)
        series[f"m={m}"] = [p.mttsf_s for p in points]
        best = max(points, key=lambda p: p.mttsf_s)
        notes.append(
            f"m={m}: optimal TIDS={best.tids_s:g}s, MTTSF={best.mttsf_s:.3e}s "
            "(paper: optimal TIDS=480/60/15/5 for m=3/5/7/9)"
        )
    data = DataSeries.build("fig2_mttsf_vs_tids", "TIDS_s", grid, "MTTSF_s", series)
    return [data], notes


def _fig3(config: ExperimentConfig) -> tuple[list[DataSeries], list[str]]:
    scenario = _base_scenario(config)
    grid = config.tids_grid_cost
    series: dict[str, list[float]] = {}
    notes: list[str] = []
    for m in config.m_values:
        points = _sweep_tids(scenario, grid, config, num_voters=m)
        series[f"m={m}"] = [p.ctotal_hop_bits_s for p in points]
        best = min(points, key=lambda p: p.ctotal_hop_bits_s)
        notes.append(
            f"m={m}: cost-optimal TIDS={best.tids_s:g}s, "
            f"Ctotal={best.ctotal_hop_bits_s:.3e} hop-bits/s"
        )
    notes.append("paper: larger m gives uniformly higher Ctotal")
    data = DataSeries.build(
        "fig3_ctotal_vs_tids", "TIDS_s", grid, "Ctotal_hop_bits_s", series
    )
    return [data], notes


def _fig4(config: ExperimentConfig) -> tuple[list[DataSeries], list[str]]:
    scenario = _base_scenario(config)
    grid = config.tids_grid
    series: dict[str, list[float]] = {}
    notes: list[str] = []
    for fn in ("logarithmic", "linear", "polynomial"):
        points = _sweep_tids(scenario, grid, config, detection_function=fn)
        series[fn] = [p.mttsf_s for p in points]
        best = max(points, key=lambda p: p.mttsf_s)
        notes.append(f"{fn}: optimal TIDS={best.tids_s:g}s, MTTSF={best.mttsf_s:.3e}s")
    notes.append(
        "paper: polynomial detection wins at large TIDS, logarithmic at "
        "small TIDS (crossovers); linear best near its optimum"
    )
    data = DataSeries.build(
        "fig4_mttsf_vs_detection_fn", "TIDS_s", grid, "MTTSF_s", series
    )
    return [data], notes


def _fig5(config: ExperimentConfig) -> tuple[list[DataSeries], list[str]]:
    scenario = _base_scenario(config)
    grid = config.tids_grid_cost
    series: dict[str, list[float]] = {}
    notes: list[str] = []
    optima: dict[str, float] = {}
    for fn in ("logarithmic", "linear", "polynomial"):
        points = _sweep_tids(scenario, grid, config, detection_function=fn)
        series[fn] = [p.ctotal_hop_bits_s for p in points]
        best = min(points, key=lambda p: p.ctotal_hop_bits_s)
        optima[fn] = best.tids_s
        notes.append(
            f"{fn}: cost-optimal TIDS={best.tids_s:g}s, "
            f"Ctotal={best.ctotal_hop_bits_s:.3e}"
        )
    notes.append(
        f"cost-optimal TIDS ordering: log({optima['logarithmic']:g}) <= "
        f"linear({optima['linear']:g}) <= poly({optima['polynomial']:g}) "
        "(paper: shorter optimal TIDS for less aggressive detection)"
    )
    data = DataSeries.build(
        "fig5_ctotal_vs_detection_fn", "TIDS_s", grid, "Ctotal_hop_bits_s", series
    )
    return [data], notes


# ---------------------------------------------------------------------------
# Ablations & validation (extensions beyond the paper's figures)
# ---------------------------------------------------------------------------

def _ablation_attacker_matrix(
    config: ExperimentConfig,
) -> tuple[list[DataSeries], list[str]]:
    """3x3 attacker-function x detection-function MTTSF matrix.

    Substantiates the paper's closing claim that the detection function
    should be adapted to the attacker function observed at runtime.
    """
    scenario = _base_scenario(config)
    grid = config.tids_grid
    forms = ("logarithmic", "linear", "polynomial")
    series: dict[str, list[float]] = {}
    notes: list[str] = []
    for attacker in forms:
        best_by_fn: dict[str, float] = {}
        for detection in forms:
            points = _sweep_tids(
                scenario, grid, config,
                attacker_function=attacker, detection_function=detection,
            )
            series[f"A={attacker[:4]}/D={detection[:4]}"] = [
                p.mttsf_s for p in points
            ]
            best_by_fn[detection] = max(p.mttsf_s for p in points)
        winner = max(best_by_fn, key=best_by_fn.get)
        notes.append(
            f"attacker={attacker}: best detection={winner} "
            f"(MTTSF {best_by_fn[winner]:.3e}s; "
            + ", ".join(f"{k}={v:.3e}" for k, v in best_by_fn.items())
            + ")"
        )
    data = DataSeries.build(
        "ablation_attacker_matrix", "TIDS_s", grid, "MTTSF_s", series
    )
    return [data], notes


def _ablation_hostids(config: ExperimentConfig) -> tuple[list[DataSeries], list[str]]:
    """Host-IDS quality sweep (p1 = p2)."""
    scenario = _base_scenario(config)
    levels = (0.001, 0.005, 0.01, 0.02, 0.05)
    mttsf: list[float] = []
    ctotal: list[float] = []
    for p_err in levels:
        result = _evaluate_point(
            scenario, config, host_false_negative=p_err, host_false_positive=p_err
        )
        mttsf.append(result.mttsf_s)
        ctotal.append(result.ctotal_hop_bits_s)
    notes = [
        f"p1=p2={levels[0]:g} -> MTTSF {mttsf[0]:.3e}s; "
        f"p1=p2={levels[-1]:g} -> MTTSF {mttsf[-1]:.3e}s",
        "better host IDS extends survival monotonically at fixed TIDS",
    ]
    return (
        [
            DataSeries.build(
                "ablation_hostids_mttsf", "p1=p2", levels, "MTTSF_s", {"mttsf": mttsf}
            ),
            DataSeries.build(
                "ablation_hostids_ctotal",
                "p1=p2",
                levels,
                "Ctotal_hop_bits_s",
                {"ctotal": ctotal},
            ),
        ],
        notes,
    )


def _ablation_ng_coupling(
    config: ExperimentConfig,
) -> tuple[list[DataSeries], list[str]]:
    """Decoupled vs exactly-coupled group dynamics (small N)."""
    from ..params import GroupDynamicsParameters

    partition_rates = (1e-6, 1e-5, 1e-4, 2.78e-4, 1e-3)
    n = 12 if config.quick else 20
    grid_params = [
        GCSParameters.paper_defaults(
            num_nodes=n,
            groups=GroupDynamicsParameters(
                partition_rate_hz=nu_p, merge_rate_hz=1.11e-3, max_groups=4
            ),
        )
        for nu_p in partition_rates
    ]
    # Both solver variants of every grid point go through the engine as
    # one batch when a runner is configured (cached + parallelisable).
    results = _evaluate_requests(
        config,
        [EvalRequest(params=p, method="fast") for p in grid_params]
        + [EvalRequest(params=p, method="spn-coupled") for p in grid_params],
    )
    decoupled = [r.mttsf_s for r in results[: len(grid_params)]]
    coupled = [r.mttsf_s for r in results[len(grid_params) :]]
    gaps = [abs(a - b) / b for a, b in zip(decoupled, coupled)]
    notes = [
        f"partition_rate={r:.1e}/s: decoupling error {g:.1%}"
        for r, g in zip(partition_rates, gaps)
    ]
    notes.append(
        "decoupling is accurate when partitions are rare (paper's dense "
        "default); frequent partitioning of tiny groups amplifies "
        "collusion, which only the coupled model captures"
    )
    data = DataSeries.build(
        "ablation_ng_coupling",
        "partition_rate_hz",
        partition_rates,
        "MTTSF_s",
        {"decoupled": decoupled, "coupled": coupled},
    )
    return [data], notes


def _valsim_replications(task: tuple[GCSParameters, int, int]) -> tuple[float, float, float]:
    """One grid point's replication batch (module level: pools pickle it)."""
    params, replications, seed = task
    summary = run_replications(
        params, replications=replications, mode="rates", seed=seed
    )
    lo, hi = summary.ttsf.interval
    return summary.ttsf.mean, lo, hi


def _validation_sim(config: ExperimentConfig) -> tuple[list[DataSeries], list[str]]:
    """Monte Carlo vs analytic MTTSF across TIDS."""
    n = 12 if config.quick else 30
    reps = 150 if config.quick else 400
    grid = (15.0, 60.0, 240.0, 960.0)
    grid_params = [
        GCSParameters.small_test(num_nodes=n, detection_interval_s=tids)
        for tids in grid
    ]

    # Analytic side: one engine batch when a runner is configured.
    analytic = [
        r.mttsf_s
        for r in _evaluate_requests(
            config, [EvalRequest(params=p) for p in grid_params]
        )
    ]

    # Simulation side: the replication batches are embarrassingly
    # parallel across grid points, so fan them out over the runner's
    # execution backend (they are stochastic, hence never cached).
    backend = config.runner.backend if config.runner is not None else SerialBackend()
    outcomes = backend.run(
        _valsim_replications, [(p, reps, config.seed) for p in grid_params]
    )
    sim_mean: list[float] = []
    sim_lo: list[float] = []
    sim_hi: list[float] = []
    inside = 0
    for value, outcome in zip(analytic, outcomes):
        if not outcome.ok:
            raise ExperimentError(
                f"replication batch failed: {outcome.error_type}: {outcome.error}"
            )
        mean, lo, hi = outcome.value
        sim_mean.append(mean)
        sim_lo.append(lo)
        sim_hi.append(hi)
        if lo <= value <= hi:
            inside += 1
    notes = [
        f"analytic MTTSF inside the 95% CI at {inside}/{len(grid)} grid points "
        f"({reps} replications each)"
    ]
    data = DataSeries.build(
        "validation_sim_vs_model",
        "TIDS_s",
        grid,
        "MTTSF_s",
        {
            "analytic": analytic,
            "sim_mean": sim_mean,
            "sim_ci_lo": sim_lo,
            "sim_ci_hi": sim_hi,
        },
    )
    return [data], notes


def _host_vs_voting(config: ExperimentConfig) -> tuple[list[DataSeries], list[str]]:
    """Host-based IDS baseline vs voting-based IDS (paper Section 2.2).

    The paper's two protocol types: *host-based* IDS — each node decides
    alone (modelled as a single vote-participant, ``m = 1``: the verdict
    is one node's host-IDS output, and a compromised juror colludes) —
    versus the *voting-based* protocol with ``m = 5``. The voting layer
    is the paper's contribution; this experiment quantifies what it buys
    and what it costs.
    """
    scenario = _base_scenario(config)
    grid = config.tids_grid
    mttsf: dict[str, list[float]] = {}
    ctotal: dict[str, list[float]] = {}
    peaks: dict[str, float] = {}
    for label, m in (("host-based (m=1)", 1), ("voting (m=5)", 5)):
        points = _sweep_tids(scenario, grid, config, num_voters=m)
        mttsf[label] = [p.mttsf_s for p in points]
        ctotal[label] = [p.ctotal_hop_bits_s for p in points]
        peaks[label] = max(mttsf[label])
    gain = peaks["voting (m=5)"] / peaks["host-based (m=1)"]
    notes = [
        f"peak MTTSF: host-based {peaks['host-based (m=1)']:.3e}s vs "
        f"voting {peaks['voting (m=5)']:.3e}s — the voting layer buys "
        f"{gain:.1f}x survivability",
        "voting costs more per detection round (m ballots instead of 1) "
        "but suppresses false evictions by requiring a majority",
    ]
    return (
        [
            DataSeries.build(
                "host_vs_voting_mttsf", "TIDS_s", grid, "MTTSF_s", mttsf
            ),
            DataSeries.build(
                "host_vs_voting_ctotal", "TIDS_s", grid, "Ctotal_hop_bits_s", ctotal
            ),
        ],
        notes,
    )


def _ablation_workload(config: ExperimentConfig) -> tuple[list[DataSeries], list[str]]:
    """Attacker-tempo (λc) × traffic (λq) sensitivity of the optimum.

    Extension: the paper fixes λc = 1/12h and λq = 1/min; this sweep
    shows how the optimal detection interval tracks the threat tempo
    (faster compromise ⇒ shorter optimal TIDS) and the leak channel
    (more data requests ⇒ more C1 exposure per undetected minute).
    """
    scenario = _base_scenario(config)
    grid = config.tids_grid
    hour = 3600.0

    lambda_c_values = (1.0 / (48 * hour), 1.0 / (12 * hour), 1.0 / (3 * hour))
    mttsf_by_lc: dict[str, list[float]] = {}
    optimal_tids: list[float] = []
    for lam_c in lambda_c_values:
        points = _sweep_tids(scenario, grid, config, base_compromise_rate_hz=lam_c)
        label = f"lc=1/{1/(lam_c*hour):.0f}h"
        mttsf_by_lc[label] = [p.mttsf_s for p in points]
        optimal_tids.append(max(points, key=lambda p: p.mttsf_s).tids_s)

    lambda_q_values = (1.0 / 300.0, 1.0 / 60.0, 1.0 / 15.0)
    mttsf_by_lq: dict[str, list[float]] = {}
    for lam_q in lambda_q_values:
        points = _sweep_tids(scenario, grid, config, data_rate_hz=lam_q)
        label = f"lq=1/{1/lam_q:.0f}s"
        mttsf_by_lq[label] = [p.mttsf_s for p in points]

    notes = [
        "optimal TIDS vs attacker tempo (λc = 1/48h, 1/12h, 1/3h): "
        f"{optimal_tids[0]:g}s, {optimal_tids[1]:g}s, {optimal_tids[2]:g}s "
        "(faster compromise favours more frequent detection)",
        "higher data-request rate λq inflates the C1 leak channel and "
        "suppresses MTTSF at large TIDS",
    ]
    return (
        [
            DataSeries.build(
                "ablation_workload_lambda_c", "TIDS_s", grid, "MTTSF_s", mttsf_by_lc
            ),
            DataSeries.build(
                "ablation_workload_lambda_q", "TIDS_s", grid, "MTTSF_s", mttsf_by_lq
            ),
        ],
        notes,
    )


def _solver_scaling(config: ExperimentConfig) -> tuple[list[DataSeries], list[str]]:
    """Wall time and state count vs group size N."""
    from ..core.metrics import evaluate

    sizes = (20, 40, 60) if config.quick else (20, 40, 60, 80, 100)
    build: list[float] = []
    solve: list[float] = []
    states: list[float] = []
    for n in sizes:
        result = evaluate(GCSParameters.paper_defaults(num_nodes=n))
        build.append(result.build_seconds)
        solve.append(result.solve_seconds)
        states.append(float(result.num_states))
    notes = [
        f"N={n}: {int(s)} states, build {b:.2f}s, solve {v:.2f}s"
        for n, s, b, v in zip(sizes, states, build, solve)
    ]
    data = DataSeries.build(
        "solver_scaling",
        "num_nodes",
        sizes,
        "seconds",
        {"build_s": build, "solve_s": solve, "states": states},
    )
    return [data], notes


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

EXPERIMENTS: dict[str, Experiment] = {
    e.id: e
    for e in (
        Experiment(
            id="fig2",
            title="MTTSF vs TIDS for m in {3,5,7,9} (linear attacker/detection)",
            paper_artifact="Figure 2",
            description=(
                "Interior optimum per curve; larger m raises MTTSF and "
                "shortens the optimal TIDS (paper: 480/60/15/5 s)."
            ),
            runner=_fig2,
        ),
        Experiment(
            id="fig3",
            title="Ctotal vs TIDS for m in {3,5,7,9}",
            paper_artifact="Figure 3",
            description="Interior cost minimum; cost increases with m.",
            runner=_fig3,
        ),
        Experiment(
            id="fig4",
            title="MTTSF vs TIDS for log/linear/poly detection (linear attacker, m=5)",
            paper_artifact="Figure 4",
            description=(
                "Aggressive detection wins at large TIDS, conservative at "
                "small TIDS; crossovers as in the paper."
            ),
            runner=_fig4,
        ),
        Experiment(
            id="fig5",
            title="Ctotal vs TIDS for log/linear/poly detection",
            paper_artifact="Figure 5",
            description=(
                "Cost-optimal TIDS grows with detection aggressiveness."
            ),
            runner=_fig5,
        ),
        Experiment(
            id="abl-attacker",
            title="Attacker x detection function MTTSF matrix",
            paper_artifact="Section 5 adaptive-IDS claim",
            description="Which detection function counters which attacker.",
            runner=_ablation_attacker_matrix,
        ),
        Experiment(
            id="abl-hostids",
            title="Host IDS quality sweep (p1 = p2)",
            paper_artifact="extension",
            description="Sensitivity of MTTSF/Ctotal to per-node IDS quality.",
            runner=_ablation_hostids,
        ),
        Experiment(
            id="baseline-host",
            title="Host-based IDS baseline vs voting-based IDS",
            paper_artifact="Section 2.2 protocol dichotomy",
            description="What the majority-voting layer buys over per-node verdicts.",
            runner=_host_vs_voting,
        ),
        Experiment(
            id="abl-workload",
            title="Attacker tempo (λc) and traffic (λq) sensitivity",
            paper_artifact="extension",
            description="How the optimal TIDS tracks threat tempo and workload.",
            runner=_ablation_workload,
        ),
        Experiment(
            id="abl-coupling",
            title="Decoupled vs coupled group dynamics",
            paper_artifact="DESIGN.md §4.4 substitution check",
            description="Quantifies the NG-decoupling approximation error.",
            runner=_ablation_ng_coupling,
        ),
        Experiment(
            id="val-sim",
            title="Monte Carlo validation of the analytic model",
            paper_artifact="methodology check",
            description="Simulation CIs vs analytic MTTSF across TIDS.",
            runner=_validation_sim,
        ),
        Experiment(
            id="scale",
            title="Solver scaling vs group size",
            paper_artifact="engineering",
            description="State count and wall time growth with N.",
            runner=_solver_scaling,
        ),
    )
}


def list_experiments() -> list[Experiment]:
    """All registered experiments, figure experiments first."""
    return list(EXPERIMENTS.values())


def get_experiment(experiment_id: str) -> Experiment:
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None


def run(
    experiment_id: str, *, quick: bool = True, seed: int = 0
) -> ExperimentResult:
    """Run one experiment by id."""
    return get_experiment(experiment_id).run(ExperimentConfig(quick=quick, seed=seed))
