"""Experiment harness: the paper's figures and the extension ablations.

The registry in :mod:`repro.analysis.experiments` maps experiment ids
(``fig2`` … ``fig5``, ``abl-*``, ``val-sim``, ``scale``) to runnable
definitions; each produces :class:`~repro.analysis.figures.DataSeries`
tables that are rendered as aligned text and written as CSV/JSON
artifacts. Three ways to run an experiment:

* ``python -m repro.cli run fig2``
* ``pytest benchmarks/bench_fig2_mttsf_vs_m.py --benchmark-only``
* ``repro.analysis.experiments.run("fig2")``
"""

from .experiments import (
    EXPERIMENTS,
    ExperimentConfig,
    ExperimentResult,
    get_experiment,
    list_experiments,
    run,
)
from .figures import DataSeries
from .io import write_experiment_artifacts
from .sweep import grid_sweep, model_grid_sweep, survivability_grid_sweep
from .tables import render_table

__all__ = [
    "DataSeries",
    "render_table",
    "grid_sweep",
    "model_grid_sweep",
    "survivability_grid_sweep",
    "EXPERIMENTS",
    "ExperimentConfig",
    "ExperimentResult",
    "get_experiment",
    "list_experiments",
    "run",
    "write_experiment_artifacts",
]
