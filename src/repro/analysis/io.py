"""Artifact output: CSV + JSON per experiment."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import TYPE_CHECKING

from .figures import DataSeries

if TYPE_CHECKING:  # pragma: no cover
    from .experiments import ExperimentResult

__all__ = ["write_series_csv", "write_experiment_artifacts"]


def write_series_csv(series: DataSeries, path: "str | Path") -> Path:
    """Write one data series as CSV (header = x label + series names)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        for row in series.to_rows():
            writer.writerow(row)
    return path


def write_experiment_artifacts(
    result: "ExperimentResult", out_dir: "str | Path"
) -> list[Path]:
    """Write every series of an experiment (CSV each + one JSON bundle)."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for series in result.series:
        written.append(write_series_csv(series, out / f"{series.name}.csv"))
    bundle = {
        "experiment": result.experiment_id,
        "title": result.title,
        "notes": result.notes,
        "elapsed_seconds": result.elapsed_seconds,
        "series": [s.to_dict() for s in result.series],
    }
    json_path = out / f"{result.experiment_id}.json"
    json_path.write_text(json.dumps(bundle, indent=2))
    written.append(json_path)
    return written
